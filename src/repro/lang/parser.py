"""Recursive-descent parser for mini-FORTRAN.

Grammar (statements are newline-terminated; ``;`` also terminates):

    program     : unit*
    unit        : ("program" NAME | "subroutine" NAME params?
                  | [type] "function" NAME params?) NL decl* stmt* "end" NL
    params      : "(" [NAME ("," NAME)*] ")"
    decl        : ("integer" | "real") item ("," item)* NL
    item        : NAME ["(" dim ("," dim)* ")"]
    dim         : INT | "*"
    stmt        : assign | if | do | dowhile | call | return | continue
                | stop | print
    assign      : designator "=" expr NL
    if          : "if" "(" expr ")" "then" NL stmt* (elseif | else)* "endif" NL
                | "if" "(" expr ")" simple_stmt NL
    do          : "do" NAME "=" expr "," expr ["," expr] NL stmt* "enddo" NL
    dowhile     : "do" "while" "(" expr ")" NL stmt* "enddo" NL

Expressions follow FORTRAN precedence:
``.or.`` < ``.and.`` < ``.not.`` < relational < additive < multiplicative
< unary minus < ``**`` (right associative) < primary.
"""

from __future__ import annotations

from repro.errors import ParseError
from repro.lang import ast
from repro.lang.lexer import tokenize
from repro.lang.tokens import Token, TokenKind
from repro.lang.types import ScalarType

_REL_OPS = {
    TokenKind.OP_LT: "<",
    TokenKind.OP_LE: "<=",
    TokenKind.OP_GT: ">",
    TokenKind.OP_GE: ">=",
    TokenKind.OP_EQ: "==",
    TokenKind.OP_NE: "!=",
}

_ADD_OPS = {TokenKind.PLUS: "+", TokenKind.MINUS: "-"}
_MUL_OPS = {TokenKind.STAR: "*", TokenKind.SLASH: "/"}


class Parser:
    """Parses a token stream into a :class:`repro.lang.ast.Program`."""

    def __init__(self, tokens: list[Token]):
        self.tokens = tokens
        self.pos = 0

    # ------------------------------------------------------------------
    # Token helpers
    # ------------------------------------------------------------------

    def _peek(self, offset: int = 0) -> Token:
        index = min(self.pos + offset, len(self.tokens) - 1)
        return self.tokens[index]

    def _at(self, kind: TokenKind) -> bool:
        return self._peek().kind == kind

    def _advance(self) -> Token:
        tok = self.tokens[self.pos]
        if tok.kind != TokenKind.EOF:
            self.pos += 1
        return tok

    def _accept(self, kind: TokenKind) -> Token | None:
        if self._at(kind):
            return self._advance()
        return None

    def _expect(self, kind: TokenKind, what: str) -> Token:
        if not self._at(kind):
            tok = self._peek()
            raise ParseError(
                f"expected {what}, found {tok.kind.value!r}", tok.location
            )
        return self._advance()

    def _expect_newline(self) -> None:
        if self._at(TokenKind.EOF):
            return
        self._expect(TokenKind.NEWLINE, "end of statement")

    def _skip_newlines(self) -> None:
        while self._accept(TokenKind.NEWLINE):
            pass

    def _expect_name(self, what: str = "identifier") -> str:
        return self._expect(TokenKind.IDENT, what).value

    # ------------------------------------------------------------------
    # Program units
    # ------------------------------------------------------------------

    def parse_program(self) -> ast.Program:
        units = []
        self._skip_newlines()
        while not self._at(TokenKind.EOF):
            units.append(self._parse_unit())
            self._skip_newlines()
        return ast.Program(units)

    def _parse_unit(self) -> ast.Subprogram:
        loc = self._peek().location
        if self._accept(TokenKind.KW_PROGRAM):
            name = self._expect_name("program name")
            self._expect_newline()
            decls, body = self._parse_unit_body()
            return ast.MainProgram(name, [], decls, body, loc)
        if self._accept(TokenKind.KW_SUBROUTINE):
            name = self._expect_name("subroutine name")
            params = self._parse_params()
            self._expect_newline()
            decls, body = self._parse_unit_body()
            return ast.Subroutine(name, params, decls, body, loc)
        result_type = None
        if self._at(TokenKind.KW_INTEGER) and self._peek(1).kind == TokenKind.KW_FUNCTION:
            self._advance()
            result_type = ScalarType.INTEGER
        elif self._at(TokenKind.KW_REAL) and self._peek(1).kind == TokenKind.KW_FUNCTION:
            self._advance()
            result_type = ScalarType.REAL
        if self._accept(TokenKind.KW_FUNCTION):
            name = self._expect_name("function name")
            params = self._parse_params()
            self._expect_newline()
            decls, body = self._parse_unit_body()
            return ast.Function(name, params, decls, body, result_type, loc)
        tok = self._peek()
        raise ParseError(
            f"expected PROGRAM, SUBROUTINE or FUNCTION, found {tok.kind.value!r}",
            tok.location,
        )

    def _parse_params(self) -> list:
        params: list[str] = []
        if not self._accept(TokenKind.LPAREN):
            return params
        if self._accept(TokenKind.RPAREN):
            return params
        params.append(self._expect_name("parameter name"))
        while self._accept(TokenKind.COMMA):
            params.append(self._expect_name("parameter name"))
        self._expect(TokenKind.RPAREN, "')'")
        return params

    def _parse_unit_body(self):
        decls = []
        self._skip_newlines()
        while self._at(TokenKind.KW_INTEGER) or self._at(TokenKind.KW_REAL):
            decls.append(self._parse_decl())
            self._skip_newlines()
        body = self._parse_stmts(stop={TokenKind.KW_END})
        self._expect(TokenKind.KW_END, "'end'")
        if not self._at(TokenKind.EOF):
            self._expect_newline()
        return decls, body

    # ------------------------------------------------------------------
    # Declarations
    # ------------------------------------------------------------------

    def _parse_decl(self) -> ast.Decl:
        loc = self._peek().location
        if self._accept(TokenKind.KW_INTEGER):
            scalar = ScalarType.INTEGER
        else:
            self._expect(TokenKind.KW_REAL, "'integer' or 'real'")
            scalar = ScalarType.REAL
        items = [self._parse_decl_item()]
        while self._accept(TokenKind.COMMA):
            items.append(self._parse_decl_item())
        self._expect_newline()
        return ast.Decl(scalar, items, loc)

    def _parse_decl_item(self) -> ast.DeclItem:
        loc = self._peek().location
        name = self._expect_name("declared name")
        dims = None
        if self._accept(TokenKind.LPAREN):
            dims = [self._parse_dim()]
            while self._accept(TokenKind.COMMA):
                dims.append(self._parse_dim())
            self._expect(TokenKind.RPAREN, "')'")
            dims = tuple(dims)
        return ast.DeclItem(name, dims, loc)

    def _parse_dim(self):
        if self._accept(TokenKind.STAR):
            return None
        if self._at(TokenKind.IDENT):
            # Adjustable extent (FORTRAN 77): names an integer dummy arg.
            return self._advance().value
        tok = self._expect(TokenKind.INT, "array extent (integer, name or '*')")
        if tok.value <= 0:
            raise ParseError("array extent must be positive", tok.location)
        return tok.value

    # ------------------------------------------------------------------
    # Statements
    # ------------------------------------------------------------------

    _STMT_STOPPERS = {
        TokenKind.KW_END,
        TokenKind.KW_ENDIF,
        TokenKind.KW_ENDDO,
        TokenKind.KW_ELSE,
        TokenKind.KW_ELSEIF,
        TokenKind.EOF,
    }

    def _parse_stmts(self, stop: set) -> list:
        stmts = []
        self._skip_newlines()
        while self._peek().kind not in self._STMT_STOPPERS:
            stmts.append(self._parse_stmt())
            self._skip_newlines()
        return stmts

    def _parse_stmt(self) -> ast.Stmt:
        tok = self._peek()
        if tok.kind == TokenKind.KW_IF:
            return self._parse_if()
        if tok.kind == TokenKind.KW_DO:
            return self._parse_do()
        if tok.kind == TokenKind.KW_GOTO:
            raise ParseError(
                "goto is not supported by mini-FORTRAN; use structured loops",
                tok.location,
            )
        stmt = self._parse_simple_stmt()
        self._expect_newline()
        return stmt

    def _parse_simple_stmt(self) -> ast.Stmt:
        """A statement with no trailing NEWLINE consumed (usable after IF)."""
        tok = self._peek()
        if tok.kind == TokenKind.KW_CALL:
            return self._parse_call()
        if tok.kind == TokenKind.KW_RETURN:
            self._advance()
            return ast.Return(tok.location)
        if tok.kind == TokenKind.KW_CONTINUE:
            self._advance()
            return ast.Continue(tok.location)
        if tok.kind == TokenKind.KW_STOP:
            self._advance()
            return ast.Stop(tok.location)
        if tok.kind == TokenKind.KW_PRINT:
            return self._parse_print()
        if tok.kind == TokenKind.IDENT:
            return self._parse_assign()
        raise ParseError(f"unexpected token {tok.kind.value!r}", tok.location)

    def _parse_assign(self) -> ast.Assign:
        loc = self._peek().location
        target = self._parse_designator()
        self._expect(TokenKind.ASSIGN, "'='")
        value = self._parse_expr()
        return ast.Assign(target, value, loc)

    def _parse_designator(self) -> ast.Expr:
        loc = self._peek().location
        name = self._expect_name()
        if self._accept(TokenKind.LPAREN):
            indices = [self._parse_expr()]
            while self._accept(TokenKind.COMMA):
                indices.append(self._parse_expr())
            self._expect(TokenKind.RPAREN, "')'")
            return ast.ArrayRef(name, indices, loc)
        return ast.VarRef(name, loc)

    def _parse_call(self) -> ast.CallStmt:
        loc = self._expect(TokenKind.KW_CALL, "'call'").location
        name = self._expect_name("subroutine name")
        args = []
        if self._accept(TokenKind.LPAREN):
            if not self._at(TokenKind.RPAREN):
                args.append(self._parse_expr())
                while self._accept(TokenKind.COMMA):
                    args.append(self._parse_expr())
            self._expect(TokenKind.RPAREN, "')'")
        return ast.CallStmt(name, args, loc)

    def _parse_print(self) -> ast.Print:
        loc = self._expect(TokenKind.KW_PRINT, "'print'").location
        args = [self._parse_expr()]
        while self._accept(TokenKind.COMMA):
            args.append(self._parse_expr())
        return ast.Print(args, loc)

    def _parse_if(self) -> ast.Stmt:
        loc = self._expect(TokenKind.KW_IF, "'if'").location
        self._expect(TokenKind.LPAREN, "'('")
        cond = self._parse_expr()
        self._expect(TokenKind.RPAREN, "')'")
        if not self._at(TokenKind.KW_THEN):
            # Logical IF: a single simple statement on the same line.
            stmt = self._parse_simple_stmt()
            self._expect_newline()
            return ast.If([(cond, [stmt])], [], loc)
        self._advance()  # then
        self._expect_newline()
        arms = [(cond, self._parse_stmts(stop=set()))]
        else_body: list = []
        while True:
            if self._accept(TokenKind.KW_ELSEIF):
                self._expect(TokenKind.LPAREN, "'('")
                arm_cond = self._parse_expr()
                self._expect(TokenKind.RPAREN, "')'")
                self._expect(TokenKind.KW_THEN, "'then'")
                self._expect_newline()
                arms.append((arm_cond, self._parse_stmts(stop=set())))
                continue
            if self._accept(TokenKind.KW_ELSE):
                self._expect_newline()
                else_body = self._parse_stmts(stop=set())
            break
        self._expect(TokenKind.KW_ENDIF, "'end if'")
        self._expect_newline()
        return ast.If(arms, else_body, loc)

    def _parse_do(self) -> ast.Stmt:
        loc = self._expect(TokenKind.KW_DO, "'do'").location
        if self._accept(TokenKind.KW_WHILE):
            self._expect(TokenKind.LPAREN, "'('")
            cond = self._parse_expr()
            self._expect(TokenKind.RPAREN, "')'")
            self._expect_newline()
            body = self._parse_stmts(stop=set())
            self._expect(TokenKind.KW_ENDDO, "'end do'")
            self._expect_newline()
            return ast.DoWhile(cond, body, loc)
        var = self._expect_name("loop variable")
        self._expect(TokenKind.ASSIGN, "'='")
        start = self._parse_expr()
        self._expect(TokenKind.COMMA, "','")
        limit = self._parse_expr()
        step = None
        if self._accept(TokenKind.COMMA):
            step = self._parse_expr()
        self._expect_newline()
        body = self._parse_stmts(stop=set())
        self._expect(TokenKind.KW_ENDDO, "'end do'")
        self._expect_newline()
        return ast.DoLoop(var, start, limit, step, body, loc)

    # ------------------------------------------------------------------
    # Expressions
    # ------------------------------------------------------------------

    def _parse_expr(self) -> ast.Expr:
        return self._parse_or()

    def _parse_or(self) -> ast.Expr:
        expr = self._parse_and()
        while self._at(TokenKind.OP_OR):
            loc = self._advance().location
            expr = ast.BinOp("or", expr, self._parse_and(), loc)
        return expr

    def _parse_and(self) -> ast.Expr:
        expr = self._parse_not()
        while self._at(TokenKind.OP_AND):
            loc = self._advance().location
            expr = ast.BinOp("and", expr, self._parse_not(), loc)
        return expr

    def _parse_not(self) -> ast.Expr:
        if self._at(TokenKind.OP_NOT):
            loc = self._advance().location
            return ast.UnOp("not", self._parse_not(), loc)
        return self._parse_relational()

    def _parse_relational(self) -> ast.Expr:
        expr = self._parse_additive()
        kind = self._peek().kind
        if kind in _REL_OPS:
            loc = self._advance().location
            rhs = self._parse_additive()
            return ast.BinOp(_REL_OPS[kind], expr, rhs, loc)
        return expr

    def _parse_additive(self) -> ast.Expr:
        expr = self._parse_multiplicative()
        while self._peek().kind in _ADD_OPS:
            op_tok = self._advance()
            rhs = self._parse_multiplicative()
            expr = ast.BinOp(_ADD_OPS[op_tok.kind], expr, rhs, op_tok.location)
        return expr

    def _parse_multiplicative(self) -> ast.Expr:
        expr = self._parse_unary()
        while self._peek().kind in _MUL_OPS:
            op_tok = self._advance()
            rhs = self._parse_unary()
            expr = ast.BinOp(_MUL_OPS[op_tok.kind], expr, rhs, op_tok.location)
        return expr

    def _parse_unary(self) -> ast.Expr:
        if self._at(TokenKind.MINUS):
            loc = self._advance().location
            return ast.UnOp("-", self._parse_unary(), loc)
        if self._at(TokenKind.PLUS):
            self._advance()
            return self._parse_unary()
        return self._parse_power()

    def _parse_power(self) -> ast.Expr:
        base = self._parse_primary()
        if self._at(TokenKind.POWER):
            loc = self._advance().location
            # ``**`` is right-associative and binds tighter than unary minus
            # on its right operand (a ** -b is legal FORTRAN).
            exponent = self._parse_unary()
            return ast.BinOp("**", base, exponent, loc)
        return base

    def _parse_primary(self) -> ast.Expr:
        tok = self._peek()
        if tok.kind == TokenKind.INT:
            self._advance()
            return ast.IntLit(tok.value, tok.location)
        if tok.kind == TokenKind.REAL:
            self._advance()
            return ast.RealLit(tok.value, tok.location)
        if tok.kind == TokenKind.LPAREN:
            self._advance()
            expr = self._parse_expr()
            self._expect(TokenKind.RPAREN, "')'")
            return expr
        if tok.kind == TokenKind.KW_REAL and self._peek(1).kind == TokenKind.LPAREN:
            # The REAL(x) conversion intrinsic collides with the type
            # keyword; recognise it here.
            self._advance()
            self._advance()
            arg = self._parse_expr()
            self._expect(TokenKind.RPAREN, "')'")
            return ast.FuncCall("real", [arg], tok.location)
        if tok.kind == TokenKind.IDENT:
            self._advance()
            if self._accept(TokenKind.LPAREN):
                args = []
                if not self._at(TokenKind.RPAREN):
                    args.append(self._parse_expr())
                    while self._accept(TokenKind.COMMA):
                        args.append(self._parse_expr())
                self._expect(TokenKind.RPAREN, "')'")
                # Array reference vs call is resolved during semantic
                # analysis; FuncCall is the neutral parse.
                return ast.FuncCall(tok.value, args, tok.location)
            return ast.VarRef(tok.value, tok.location)
        raise ParseError(f"unexpected token {tok.kind.value!r}", tok.location)


def parse_program(source: str, filename: str = "<source>") -> ast.Program:
    """Lex and parse ``source`` into an AST :class:`~repro.lang.ast.Program`."""
    return Parser(tokenize(source, filename)).parse_program()
