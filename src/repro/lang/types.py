"""The mini-FORTRAN type system: INTEGER and REAL scalars, plus arrays.

Arrays are column-major (FORTRAN order) with 1-based indices.  A dimension
may be a literal extent or ``*`` (assumed size — legal only for dummy
arguments, and only in the last dimension, as in FORTRAN 77).
"""

from __future__ import annotations

import enum


class ScalarType(enum.Enum):
    """The two scalar types of the language."""

    INTEGER = "integer"
    REAL = "real"

    def __str__(self) -> str:
        return self.value


class ArrayType:
    """An array of a scalar element type with one or more dimensions.

    ``dims`` holds the declared extent of each dimension:

    * a positive ``int`` — a constant extent;
    * a ``str`` — an *adjustable* extent named by an integer dummy argument
      (FORTRAN 77 adjustable arrays, e.g. LINPACK's ``a(lda, *)``);
    * ``None`` — an assumed-size ``*`` extent, legal only in the last
      dimension.

    FORTRAN arrays are stored column-major, so the *leading* dimensions
    determine the address stride and must be known (constant or adjustable).
    """

    __slots__ = ("element", "dims")

    def __init__(self, element: ScalarType, dims: tuple):
        if not dims:
            raise ValueError("an array needs at least one dimension")
        for extent in dims[:-1]:
            if extent is None:
                raise ValueError("only the last dimension may be assumed-size")
        self.element = element
        self.dims = tuple(dims)

    @property
    def is_adjustable(self) -> bool:
        """True when any extent is a variable name."""
        return any(isinstance(d, str) for d in self.dims)

    @property
    def rank(self) -> int:
        return len(self.dims)

    @property
    def is_assumed_size(self) -> bool:
        return self.dims[-1] is None

    def element_count(self) -> int:
        """Total declared elements; raises unless every extent is constant."""
        if self.is_assumed_size or self.is_adjustable:
            raise ValueError(
                "array with assumed-size or adjustable extents has no "
                "static element count"
            )
        total = 1
        for extent in self.dims:
            total *= extent
        return total

    def __str__(self) -> str:
        dims = ",".join("*" if d is None else str(d) for d in self.dims)
        return f"{self.element}({dims})"

    def __repr__(self) -> str:
        return f"ArrayType({self.element!r}, {self.dims!r})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ArrayType):
            return NotImplemented
        return self.element == other.element and self.dims == other.dims

    def __hash__(self) -> int:
        return hash((self.element, self.dims))


#: A value type is either a scalar or an array.
Type = object

INTEGER = ScalarType.INTEGER
REAL = ScalarType.REAL


def implicit_type(name: str) -> ScalarType:
    """Classic FORTRAN implicit typing: I..N => INTEGER, otherwise REAL."""
    first = name[0].lower()
    if "i" <= first <= "n":
        return ScalarType.INTEGER
    return ScalarType.REAL


def unify_arithmetic(lhs: ScalarType, rhs: ScalarType) -> ScalarType:
    """Result type of a mixed-mode arithmetic expression (INTEGER promotes)."""
    if ScalarType.REAL in (lhs, rhs):
        return ScalarType.REAL
    return ScalarType.INTEGER
