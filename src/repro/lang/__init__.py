"""Mini-FORTRAN: the surface language of the reproduction's compiler.

The 1989 paper evaluates its allocator inside a FORTRAN compiler.  This
package provides a small FORTRAN-flavoured language — enough to express the
paper's workloads (LINPACK kernels, SVD, the EULER shock code, quicksort) —
with a lexer, a recursive-descent parser, and a semantic analyser that
performs classic FORTRAN implicit typing (names starting with I..N are
INTEGER) plus explicit declarations.

Public entry points:

* :func:`parse_program` — source text to AST.
* :func:`analyze` — AST to a semantically-checked AST with symbol tables.
* :func:`compile_source` (in :mod:`repro.frontend`) — source straight to IR.
"""

from repro.lang.lexer import Lexer, tokenize
from repro.lang.tokens import Token, TokenKind
from repro.lang.parser import Parser, parse_program
from repro.lang.sema import SemanticAnalyzer, analyze
from repro.lang.types import ArrayType, ScalarType, Type
from repro.lang import ast

__all__ = [
    "Lexer",
    "tokenize",
    "Token",
    "TokenKind",
    "Parser",
    "parse_program",
    "SemanticAnalyzer",
    "analyze",
    "Type",
    "ScalarType",
    "ArrayType",
    "ast",
]
