"""Token definitions for the mini-FORTRAN lexer."""

from __future__ import annotations

import enum

from repro.errors import SourceLocation


class TokenKind(enum.Enum):
    """Every lexical category produced by :class:`repro.lang.lexer.Lexer`."""

    # Literals and names.
    IDENT = "ident"
    INT = "int"
    REAL = "real"

    # Keywords (mini-FORTRAN is case-insensitive; the lexer folds to lower).
    KW_PROGRAM = "program"
    KW_SUBROUTINE = "subroutine"
    KW_FUNCTION = "function"
    KW_INTEGER = "integer"
    KW_REAL = "real_kw"
    KW_IF = "if"
    KW_THEN = "then"
    KW_ELSE = "else"
    KW_ELSEIF = "elseif"
    KW_ENDIF = "endif"
    KW_DO = "do"
    KW_WHILE = "while"
    KW_ENDDO = "enddo"
    KW_CALL = "call"
    KW_RETURN = "return"
    KW_CONTINUE = "continue"
    KW_STOP = "stop"
    KW_END = "end"
    KW_GOTO = "goto"
    KW_PRINT = "print"

    # Dotted logical/relational operators (.lt. .and. ...).
    OP_LT = ".lt."
    OP_LE = ".le."
    OP_GT = ".gt."
    OP_GE = ".ge."
    OP_EQ = ".eq."
    OP_NE = ".ne."
    OP_AND = ".and."
    OP_OR = ".or."
    OP_NOT = ".not."

    # Punctuation and arithmetic.
    PLUS = "+"
    MINUS = "-"
    STAR = "*"
    SLASH = "/"
    POWER = "**"
    LPAREN = "("
    RPAREN = ")"
    COMMA = ","
    ASSIGN = "="
    COLON = ":"

    # Statement separators.
    NEWLINE = "newline"
    EOF = "eof"


#: Keywords recognised after case folding.  ``end if``/``end do`` are handled
#: in the lexer by fusing ``end`` + ``if``/``do`` into the single-token forms.
KEYWORDS = {
    "program": TokenKind.KW_PROGRAM,
    "subroutine": TokenKind.KW_SUBROUTINE,
    "function": TokenKind.KW_FUNCTION,
    "integer": TokenKind.KW_INTEGER,
    "real": TokenKind.KW_REAL,
    "if": TokenKind.KW_IF,
    "then": TokenKind.KW_THEN,
    "else": TokenKind.KW_ELSE,
    "elseif": TokenKind.KW_ELSEIF,
    "endif": TokenKind.KW_ENDIF,
    "do": TokenKind.KW_DO,
    "while": TokenKind.KW_WHILE,
    "enddo": TokenKind.KW_ENDDO,
    "call": TokenKind.KW_CALL,
    "return": TokenKind.KW_RETURN,
    "continue": TokenKind.KW_CONTINUE,
    "stop": TokenKind.KW_STOP,
    "end": TokenKind.KW_END,
    "goto": TokenKind.KW_GOTO,
    "print": TokenKind.KW_PRINT,
}

#: Dotted operators, longest-match first.
DOTTED_OPERATORS = {
    ".and.": TokenKind.OP_AND,
    ".not.": TokenKind.OP_NOT,
    ".or.": TokenKind.OP_OR,
    ".lt.": TokenKind.OP_LT,
    ".le.": TokenKind.OP_LE,
    ".gt.": TokenKind.OP_GT,
    ".ge.": TokenKind.OP_GE,
    ".eq.": TokenKind.OP_EQ,
    ".ne.": TokenKind.OP_NE,
}


class Token:
    """A single lexeme with its source location.

    ``value`` holds the identifier text (lower-cased), or the numeric value
    for INT/REAL literals, or ``None`` for fixed-spelling tokens.
    """

    __slots__ = ("kind", "value", "location")

    def __init__(self, kind: TokenKind, value, location: SourceLocation):
        self.kind = kind
        self.value = value
        self.location = location

    def __repr__(self) -> str:
        if self.value is None:
            return f"Token({self.kind.name})"
        return f"Token({self.kind.name}, {self.value!r})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Token):
            return NotImplemented
        return self.kind == other.kind and self.value == other.value
