"""The no-coloring baseline: spill every live range to memory.

Before Chaitin, simple code generators kept user variables in memory and
registers only for expression temporaries.  ``SpillAllAllocator``
reproduces that discipline inside the same driver: on the first pass it
marks *every* spillable live range for spilling; the second pass then
colors the one-instruction spill temporaries, which trivially succeeds.

It exists as a measuring stick — ``benchmarks/test_ablations.py`` shows
how far even Chaitin's 1981 allocator moved the state of the art, which
is the context for the paper's further improvement.
"""

from __future__ import annotations

from repro.regalloc.chaitin import ClassAllocation
from repro.regalloc.interference import InterferenceGraph
from repro.regalloc.select import select_colors
from repro.regalloc.simplify import simplify
from repro.regalloc.spill_costs import INFINITE_COST, SpillCosts


class SpillAllAllocator:
    """Strategy object: memory-resident everything (no real coloring)."""

    name = "spill-all"
    optimistic = False
    #: No coloring-quality relation to Chaitin holds (it spills every
    #: range by design), so no §2.3 comparison applies.
    guarantees = ()

    def allocate_class(
        self,
        graph: InterferenceGraph,
        costs: SpillCosts,
        color_order: list | None = None,
        tracer=None,
    ) -> ClassAllocation:
        spillable = [
            graph.vreg_for(node)
            for node in range(graph.k, graph.num_nodes)
            if costs.cost(graph.vreg_for(node)) != INFINITE_COST
        ]
        if spillable:
            return ClassAllocation({}, spillable, ran_select=False)
        # Only unspillable temporaries remain: color them (they are
        # short-lived, so simplification cannot stall).
        outcome = simplify(graph, costs, optimistic=True)
        selection = select_colors(graph, outcome.stack, color_order)
        colors = {
            graph.vreg_for(node): color
            for node, color in selection.colors.items()
            if not graph.is_precolored(node)
        }
        spilled = [graph.vreg_for(node) for node in selection.uncolored]
        return ClassAllocation(colors, spilled, ran_select=True)
