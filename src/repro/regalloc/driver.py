"""The allocation driver: Chaitin's Figure-4 loop.

::

    renumber -> build -> coalesce -> spill costs -> simplify -> select
         ^                                             |          |
         |                 spill code  <---------------+----------+
         +--------------------------------------------(if any spills)

Each pass times its phases (Figure 7) and records what spilled (Figures
5/6).  Both register classes are allocated in the same pass — the RT/PC's
GPRs and FPRs interfere only within their own file — and a pass that
spills in either class re-runs the cycle for the whole function.

The loop reuses what later passes cannot change: spill code only inserts
instructions *inside* existing blocks, so the CFG and the loop nesting of
every block are computed once, in the first pass, and carried across
passes.  Renumbering and coalescing are skipped once a pass finds nothing
to split or merge — spill temporaries are excluded from both transforms,
so a fixed point stays a fixed point (aggressive coalescing only; the
conservative variant's degree test can change after a spill, so it always
re-runs).  ``PassStats.reused`` records exactly what was carried over.

``check_allocation`` independently re-derives interference on the final
code and verifies the coloring — the allocator's acceptance test.
Deeper, *dynamic* checking (differential execution of allocated against
pre-allocation code) lives in :mod:`repro.robustness.validate`.

``allocate_module`` fans independent functions out over a process pool
when ``jobs > 1``; results are deterministic and bit-identical to the
serial path.  The parallel driver is hardened: workers get a per-function
``timeout``, a crashed worker is retried in-process a bounded number of
times (``retries``) on a fresh copy of its function, and a function whose
allocation still fails is handled per :class:`FailurePolicy` — re-raise,
degrade to the spill-all baseline, or skip — with structured diagnostics
recorded on :attr:`ModuleAllocation.failures` and an optional
deterministic crash bundle written under ``bundle_dir``.
"""

from __future__ import annotations

import enum
import pickle
import time
import warnings

from repro.analysis.cfg import CFG
from repro.analysis.liveness import Liveness
from repro.analysis.loops import annotate_loop_depths
from repro.analysis.webs import split_webs
from repro.errors import AllocationError, DriverTimeoutError, ReproError
from repro.ir.function import Function
from repro.ir.module import Module
from repro.ir.values import RClass
from repro.machine.target import Target
from repro.observability.trace import NULL_TRACER, Tracer, coerce_tracer
from repro.regalloc.briggs import BriggsAllocator
from repro.regalloc.chaitin import ChaitinAllocator
from repro.regalloc.coalesce import coalesce_copies
from repro.regalloc.interference import (
    build_interference_graph,
    build_interference_graphs,
)
from repro.regalloc.invariants import (
    check_class_invariants,
    check_cost_invariants,
    check_graph_invariants,
    coerce_paranoia,
)
from repro.regalloc.spill import insert_spill_code
from repro.regalloc.spill_costs import compute_spill_costs
from repro.regalloc.stats import AllocationStats, PassStats

_CLASSES = (RClass.INT, RClass.FLOAT)


def _method_for(name_or_method):
    if isinstance(name_or_method, str):
        if name_or_method == "chaitin":
            return ChaitinAllocator()
        if name_or_method == "briggs":
            return BriggsAllocator()
        if name_or_method == "briggs-degree":
            return BriggsAllocator(order="degree")
        if name_or_method == "spill-all":
            from repro.regalloc.naive import SpillAllAllocator

            return SpillAllAllocator()
        if name_or_method == "repair":
            from repro.regalloc.repair import RepairAllocator

            return RepairAllocator()
        raise AllocationError(f"unknown allocation method {name_or_method!r}")
    return name_or_method


class FailurePolicy(enum.Enum):
    """What :func:`allocate_module` does when one function's allocation
    fails (an :class:`AllocationError`, a crashed worker, or a worker
    exceeding its timeout).

    * ``RAISE`` — propagate the error (the historical behavior).
    * ``DEGRADE`` — re-allocate the function with the spill-all baseline,
      which needs almost no registers, and record the downgrade.
    * ``SKIP`` — leave the function out of the results and record why.
    """

    RAISE = "raise"
    DEGRADE = "degrade-to-naive"
    SKIP = "skip"

    @classmethod
    def coerce(cls, value) -> "FailurePolicy":
        if isinstance(value, cls):
            return value
        try:
            return cls(value)
        except ValueError:
            choices = ", ".join(repr(p.value) for p in cls)
            raise AllocationError(
                f"unknown failure policy {value!r} (choose from {choices})"
            ) from None


class AllocationFailure:
    """Structured diagnostics for one function whose allocation failed.

    Collected on :attr:`ModuleAllocation.failures` whenever a non-raising
    :class:`FailurePolicy` absorbs a failure (and, transiently, before a
    ``RAISE`` policy propagates it).
    """

    __slots__ = (
        "function",
        "method",
        "phase",
        "pass_index",
        "error",
        "error_type",
        "elapsed",
        "retries",
        "action",
        "bundle",
    )

    def __init__(self, function, method, phase, pass_index, error, elapsed,
                 retries, action, bundle=None):
        self.function = function
        self.method = method
        #: where the failure happened: "build", "color", "spill",
        #: "validate", "worker-crash", "worker-timeout", ...
        self.phase = phase
        self.pass_index = pass_index
        self.error = str(error)
        self.error_type = type(error).__name__
        self.elapsed = elapsed
        self.retries = retries
        #: what the policy did: "raised", "degraded-to-naive", "skipped".
        self.action = action
        #: path of the crash bundle, when one was written.
        self.bundle = bundle

    def as_dict(self) -> dict:
        return {slot: getattr(self, slot) for slot in self.__slots__}

    @classmethod
    def from_dict(cls, data: dict) -> "AllocationFailure":
        """Rebuild a failure from :meth:`as_dict` output (the durability
        journal replays absorbed failures across process restarts)."""
        failure = cls.__new__(cls)
        for slot in cls.__slots__:
            setattr(failure, slot, data.get(slot))
        return failure

    def __repr__(self) -> str:
        return (
            f"AllocationFailure({self.function}: {self.error_type} in "
            f"{self.phase}, {self.action})"
        )


class AllocationResult:
    """Final coloring of one function plus its statistics."""

    __slots__ = ("function", "target", "method", "assignment", "stats",
                 "graphs")

    def __init__(self, function, target, method, assignment, stats,
                 graphs=None):
        self.function = function
        self.target = target
        self.method = method
        #: VReg -> color for every register occurring in the final code.
        self.assignment = assignment
        self.stats = stats
        #: final pass's {rclass: InterferenceGraph}, kept when the
        #: allocation ran with ``paranoia`` enabled so
        #: :func:`repro.regalloc.invariants.recheck_assignment` can replay
        #: the assignment without rebuilding liveness; ``None`` otherwise.
        self.graphs = graphs

    def __repr__(self) -> str:
        return (
            f"AllocationResult({self.method} on {self.function.name}: "
            f"{self.stats.pass_count} passes, "
            f"{self.stats.registers_spilled} spilled)"
        )


def allocate_function(
    function: Function,
    target: Target,
    method="briggs",
    coalesce=True,
    renumber: bool = True,
    rematerialize: bool = False,
    split_ranges: bool = False,
    max_passes: int = 30,
    validate: bool = False,
    paranoia: str = "off",
    tracer=None,
) -> AllocationResult:
    """Allocate registers for ``function`` in place (spill code may be
    inserted).  ``method`` is ``"chaitin"``, ``"briggs"``,
    ``"briggs-degree"`` or a strategy object.  ``rematerialize`` enables
    Chaitin's constant-rematerialization refinement for spilled ranges.

    ``paranoia`` (``"off"``/``"cheap"``/``"full"``, see
    :mod:`repro.regalloc.invariants`) turns on phase-boundary invariant
    checking inside the cycle; any violation raises
    :class:`repro.errors.InvariantError` in the phase that committed it.

    ``tracer`` (a :class:`repro.observability.trace.Tracer`, default
    disabled) records hierarchical spans — ``function`` → ``pass`` →
    ``build``/``color``/``spill`` with the build steps and the
    strategies' ``simplify``/``select`` nested inside — plus counters
    (live ranges, edges, max degree, spills, coalesces, reuse hits,
    invariant-check time).  Tracing never changes the allocation.

    Any :class:`AllocationError` escaping the cycle carries structured
    ``context``: the function name, the allocation method, the pass index
    and the phase ("build", "color", "spill", "validate") it tripped in.
    """
    strategy = _method_for(method)
    paranoia = coerce_paranoia(paranoia)
    tracer = coerce_tracer(tracer)
    state = {"phase": "setup", "pass_index": 0}
    try:
        with tracer.span(f"function:{function.name}", cat="function",
                         method=strategy.name):
            return _run_cycle(
                function, target, strategy, coalesce, renumber,
                rematerialize, split_ranges, max_passes, validate,
                paranoia, tracer, state,
            )
    except AllocationError as error:
        raise error.with_context(
            function=function.name,
            method=strategy.name,
            phase=state["phase"],
            pass_index=state["pass_index"],
        )


def _run_cycle(function, target, strategy, coalesce, renumber,
               rematerialize, split_ranges, max_passes, validate,
               paranoia, tracer, state) -> AllocationResult:
    """The Figure-4 cycle itself — the body of :func:`allocate_function`,
    split out so the tracer's span hierarchy nests at plain indentation.
    ``state`` carries the phase/pass a failure happened in back to the
    caller's error-context handler."""
    stats = AllocationStats(strategy.name, function.name)
    assignment: dict = {}

    phase = "setup"
    pass_index = 0
    try:
        if split_ranges:
            from repro.regalloc.splitting import split_live_ranges

            phase = "split"
            with tracer.span("split", cat="phase"):
                split_live_ranges(function, target)

        coalesce_strategy = coalesce if isinstance(coalesce, str) else "aggressive"
        # Cross-pass caches.  Spill code never adds or removes blocks and
        # never rewrites terminators, so the CFG and loop nesting computed
        # in the first pass hold for every later one.
        cfg = None
        loop_info = None
        # Renumber/coalesce fixed point (see module docstring).  The two
        # feed each other — a split can expose a merge and vice versa — so
        # both are skipped only once a single pass observed *neither*
        # doing anything.  Spill code cannot disturb that state (spill
        # temporaries are excluded from both transforms), except through
        # the conservative coalescer's degree test, which is why only the
        # aggressive strategy settles.
        build_settled = False

        for pass_index in range(1, max_passes + 1):
            with tracer.span(f"pass:{pass_index}", cat="pass"):
                pass_stats = PassStats(pass_index)
                stats.passes.append(pass_stats)
                reused: list = []

                # ---- build -----------------------------------------------
                phase = "build"
                started = time.perf_counter()
                with tracer.span("build", cat="phase"):
                    if renumber:
                        if build_settled:
                            reused.append("renumber")
                        else:
                            with tracer.span("renumber", cat="step"):
                                pass_stats.webs_split = split_webs(function)
                    if coalesce:
                        if build_settled:
                            reused.append("coalesce")
                        else:
                            with tracer.span("coalesce", cat="step"):
                                pass_stats.coalesced = coalesce_copies(
                                    function, target,
                                    strategy=coalesce_strategy,
                                )
                    if not build_settled:
                        coalesce_quiet = not coalesce or (
                            pass_stats.coalesced == 0
                            and coalesce_strategy == "aggressive"
                        )
                        if pass_stats.webs_split == 0 and coalesce_quiet:
                            build_settled = True
                    if cfg is None:
                        cfg = CFG(function)
                    else:
                        reused.append("cfg")
                    with tracer.span("liveness", cat="step"):
                        liveness = Liveness(function, cfg)
                    if loop_info is None:
                        loop_info = annotate_loop_depths(function, cfg)
                    else:
                        reused.append("loops")
                    pass_stats.reused = tuple(reused)
                    with tracer.span("interference", cat="step"):
                        graphs = build_interference_graphs(
                            function, target, liveness, rclasses=_CLASSES
                        )
                    with tracer.span("spill_costs", cat="step"):
                        costs = compute_spill_costs(function, loop_info)
                    pass_stats.live_ranges = sum(
                        g.num_vreg_nodes for g in graphs.values()
                    )
                    pass_stats.edges = sum(
                        g.edge_count() for g in graphs.values()
                    )
                pass_stats.build_time = time.perf_counter() - started
                if tracer.enabled:
                    tracer.counter("live_ranges", pass_stats.live_ranges)
                    tracer.counter("edges", pass_stats.edges)
                    tracer.counter("max_degree", max(
                        (
                            g.degree(node)
                            for g in graphs.values()
                            for node in range(g.k, g.num_nodes)
                        ),
                        default=0,
                    ))
                    tracer.add("coalesced", pass_stats.coalesced)
                    tracer.add("webs_split", pass_stats.webs_split)
                    tracer.add("reuse_hits", len(reused))
                if paranoia != "off":
                    with tracer.span("invariants", cat="step",
                                     level=paranoia) as inv_span:
                        for graph in graphs.values():
                            check_graph_invariants(graph, paranoia)
                            check_cost_invariants(graph, costs)
                    tracer.add("invariant_check_time", inv_span.elapsed)

                # ---- simplify + select -----------------------------------
                phase = "color"
                spilled_vregs: list = []
                class_colors: dict = {}
                with tracer.span("color", cat="phase"):
                    for rclass in _CLASSES:
                        graph = graphs[rclass]
                        if graph.num_vreg_nodes == 0:
                            continue  # this class is absent here
                        outcome = strategy.allocate_class(
                            graph, costs, target.color_order(rclass),
                            tracer=tracer,
                        )
                        if paranoia != "off":
                            with tracer.span("invariants", cat="step",
                                             level=paranoia) as inv_span:
                                check_class_invariants(
                                    graph, outcome,
                                    target.color_order(rclass), paranoia,
                                )
                            tracer.add("invariant_check_time",
                                       inv_span.elapsed)
                        pass_stats.simplify_time += outcome.simplify_time
                        pass_stats.select_time += outcome.select_time
                        if outcome.ran_select:
                            pass_stats.ran_select = True
                        spilled_vregs.extend(outcome.spilled_vregs)
                        class_colors.update(outcome.colors)

                if not spilled_vregs:
                    assignment = class_colors
                    break

                # ---- spill -----------------------------------------------
                phase = "spill"
                pass_stats.spilled_count = len(spilled_vregs)
                pass_stats.spilled_cost = sum(
                    costs.cost(v) for v in spilled_vregs
                )
                if tracer.enabled:
                    tracer.counter("spilled", pass_stats.spilled_count)
                    tracer.add("spill_cost", pass_stats.spilled_cost)
                started = time.perf_counter()
                with tracer.span("spill", cat="phase",
                                 spilled=pass_stats.spilled_count):
                    insert_spill_code(
                        function, spilled_vregs, rematerialize=rematerialize
                    )
                pass_stats.spill_time = time.perf_counter() - started
        else:
            raise AllocationError(
                f"{function.name}: no coloring after {max_passes} passes "
                f"({strategy.name}, target {target.name})",
                context={"phase": "driver"},
            )

        result = AllocationResult(
            function, target, strategy.name, assignment, stats,
            graphs=graphs if paranoia != "off" else None,
        )
        if validate:
            phase = "validate"
            with tracer.span("validate", cat="phase"):
                check_allocation(result)
        return result
    except AllocationError:
        state["phase"] = phase
        state["pass_index"] = pass_index
        raise


def check_allocation(result: AllocationResult) -> None:
    """Independently verify the final coloring.

    Rebuilds liveness and interference on the final code and asserts:
    every occurring register has a color within its class's file; no two
    interfering registers share a color; nothing live across a call holds
    a caller-saved register.
    """
    function = result.function
    target = result.target
    assignment = result.assignment
    try:
        liveness = Liveness(function, CFG(function))

        occurring = set()
        for _block, _index, instr in function.instructions():
            occurring.update(instr.defs)
            occurring.update(instr.uses)
        for vreg in occurring:
            color = assignment.get(vreg)
            if color is None:
                raise AllocationError(f"{vreg!r} occurs but has no color")
            if not 0 <= color < target.regs(vreg.rclass):
                raise AllocationError(
                    f"{vreg!r} colored {color}, outside the "
                    f"{target.regs(vreg.rclass)}-register file"
                )

        for rclass in _CLASSES:
            graph = build_interference_graph(
                function, rclass, target, liveness
            )
            for node in range(graph.k, graph.num_nodes):
                vreg = graph.vreg_for(node)
                for neighbor in graph.neighbors(node):
                    if neighbor < graph.k:
                        if assignment[vreg] == neighbor:
                            raise AllocationError(
                                f"{vreg!r} colored {assignment[vreg]} but "
                                f"interferes with that physical register"
                            )
                    elif neighbor > node:
                        other = graph.vreg_for(neighbor)
                        if assignment[vreg] == assignment[other]:
                            raise AllocationError(
                                f"{vreg!r} and {other!r} interfere but "
                                f"share color {assignment[vreg]}"
                            )
    except AllocationError as error:
        raise error.with_context(
            function=function.name, method=result.method, phase="validate"
        )


class ModuleAllocation:
    """Per-function results plus the merged assignment the simulator and
    encoder consume.

    ``failures`` holds one :class:`AllocationFailure` per function whose
    allocation did not complete normally (only possible under a
    non-raising :class:`FailurePolicy`); ``parallel_fallback`` records
    why a requested parallel allocation ran serially instead (``None``
    when it ran as requested).
    """

    __slots__ = (
        "module",
        "target",
        "method",
        "results",
        "assignment",
        "failures",
        "parallel_fallback",
    )

    def __init__(self, module, target, method, results, failures=None,
                 parallel_fallback=None):
        self.module = module
        self.target = target
        self.method = method
        self.results = results  # name -> AllocationResult
        self.failures = list(failures or [])
        self.parallel_fallback = parallel_fallback
        self.assignment = {}
        for result in results.values():
            self.assignment.update(result.assignment)

    def result(self, name: str) -> AllocationResult:
        return self.results[name]

    def total_spilled(self) -> int:
        return sum(r.stats.registers_spilled for r in self.results.values())

    def failed_functions(self) -> list:
        return [failure.function for failure in self.failures]

    def __repr__(self) -> str:
        failed = f", {len(self.failures)} failed" if self.failures else ""
        return (
            f"ModuleAllocation({self.method}, {len(self.results)} functions, "
            f"{self.total_spilled()} spilled{failed})"
        )


def _allocate_worker(function, target, method, kwargs, trace=False):
    """Pre-pool process-pool entry point, kept as the transport-free
    reference: allocate one pickled function copy in-process.

    Returns ``(result, trace_snapshot)``.  The persistent-pool path
    (:mod:`repro.regalloc.pool`) supersedes this for dispatch — workers
    there receive wire text, not pickled functions — but the semantics
    (fresh tracer stamped with the worker's pid, snapshot shipped back)
    are identical, and the wire round-trip property tests pin the two
    transports to the same results.
    """
    tracer = Tracer() if trace else None
    result = allocate_function(
        function, target, method, tracer=tracer, **kwargs
    )
    return result, (tracer.snapshot() if trace else None)


def _fresh_copy(function: Function) -> Function:
    """An independent deep copy (pickle round trip, the same mechanism
    that ships functions to workers) so retries start from pristine IR."""
    return pickle.loads(pickle.dumps(function))


def _write_bundle(function, target, method_name, error, bundle_dir):
    """Best-effort crash-bundle dump; never masks the original failure."""
    if bundle_dir is None:
        return None
    try:
        from repro.robustness.bundles import write_crash_bundle

        return str(
            write_crash_bundle(
                function, target, error, out_dir=bundle_dir,
                method=method_name,
            )
        )
    except Exception as bundle_error:
        warnings.warn(
            f"could not write crash bundle for {function.name}: "
            f"{bundle_error!r}",
            RuntimeWarning,
        )
        return None


def _handle_failure(function, target, method_name, error, policy, failures,
                    bundle_dir, elapsed, retries, phase):
    """Record one function's failure and apply ``policy``.

    Returns the substitute :class:`AllocationResult` under ``DEGRADE``,
    ``None`` under ``SKIP``; re-raises under ``RAISE``.
    """
    if isinstance(error, ReproError):
        error.with_context(function=function.name, method=method_name,
                           phase=phase)
        pass_index = error.context.get("pass_index")
    else:
        pass_index = None
    bundle = _write_bundle(function, target, method_name, error, bundle_dir)
    action = {
        FailurePolicy.RAISE: "raised",
        FailurePolicy.DEGRADE: "degraded-to-naive",
        FailurePolicy.SKIP: "skipped",
    }[policy]
    failures.append(
        AllocationFailure(
            function=function.name,
            method=method_name,
            phase=phase,
            pass_index=pass_index,
            error=error,
            elapsed=elapsed,
            retries=retries,
            action=action,
            bundle=bundle,
        )
    )
    if policy is FailurePolicy.RAISE:
        raise error
    warnings.warn(
        f"allocation of {function.name} ({method_name}) failed in {phase}: "
        f"{error!r}; {action}",
        RuntimeWarning,
    )
    if policy is FailurePolicy.DEGRADE:
        # Spill-all needs almost no registers, so it succeeds wherever a
        # coloring allocator can fail; validate=True proves the downgrade
        # itself is sound.  A partially spill-rewritten function is fine
        # as input — spill code preserves semantics.
        try:
            return allocate_function(
                function, target, "spill-all", validate=True
            )
        except AllocationError as degrade_error:
            # The target is too small even for the no-coloring baseline
            # (e.g. fewer registers than one instruction's operands need).
            # The only non-raising floor left is skip — on record, twice:
            # the original failure's action is corrected and the failed
            # downgrade gets its own entry.
            failures[-1].action = "skipped"
            failures.append(
                AllocationFailure(
                    function=function.name,
                    method="spill-all",
                    phase=degrade_error.context.get("phase", "degrade"),
                    pass_index=degrade_error.context.get("pass_index"),
                    error=degrade_error,
                    elapsed=0.0,
                    retries=0,
                    action="skipped",
                    bundle=bundle,
                )
            )
            warnings.warn(
                f"degrade-to-naive for {function.name} also failed: "
                f"{degrade_error!r}; skipped",
                RuntimeWarning,
            )
            return None
    return None


def _apply_poison(checkpoint, function, module, target, method_name,
                  policy, failures, bundle_dir, results):
    """Convert a supervisor ``poison`` verdict (the function repeatedly
    blew the child's memory budget) into a contained per-function
    failure under ``policy``, journaling the outcome so later resumes
    replay the decision.  Returns ``True`` when the function was
    poisoned and is now fully handled."""
    reason = checkpoint.poison_reason(function)
    if reason is None:
        return False
    from repro.durability.checkpoint import function_key
    from repro.errors import MemoryBudgetError

    error = MemoryBudgetError(
        f"allocation of {function.name} repeatedly exceeded the "
        f"supervisor's memory budget ({reason})",
        context={"function": function.name},
    )
    key = function_key(function)
    before = len(failures)
    result = _handle_failure(
        function, target, method_name, error, policy, failures,
        bundle_dir, elapsed=0.0, retries=0, phase="memory-budget",
    )
    checkpoint.mark_failures(key, function.name, failures[before:],
                             substitute=result)
    if result is not None:
        module.functions[function.name] = result.function
        results[function.name] = result
    return True


def _serial_retry(function, target, method, kwargs, retries):
    """Re-attempt a crashed worker's function in-process, each time on a
    fresh copy so earlier partial spill rewrites cannot compound.

    Returns ``(result, attempts, last_error)`` — ``result`` is ``None``
    when every attempt failed.
    """
    last_error = None
    for attempt in range(1, retries + 1):
        copy = _fresh_copy(function)
        try:
            return allocate_function(copy, target, method, **kwargs), attempt, None
        except Exception as error:  # KeyboardInterrupt deliberately flows
            last_error = error
    return None, retries, last_error


def _parallel_results(module, functions, target, method, kwargs, jobs,
                      timeout, retries, policy, bundle_dir, failures,
                      tracer=NULL_TRACER, cache=True, checkpoint=None):
    """Allocate ``functions`` over the persistent worker pool.

    Functions travel to the warm pool (:mod:`repro.regalloc.pool`) as
    compact wire text, batched largest-first; responses carry the
    allocated function's wire text plus the assignment and stats, and
    the parent decodes and swaps the allocated copies into the module so
    every downstream consumer (simulator, encoder) sees one consistent
    object graph.  With ``cache`` (and a string method name, tracing
    off), finished responses are stored content-addressed and replayed
    on identical requests without dispatching at all.

    Failure handling is *per function*: a crashed worker is retried
    in-process up to ``retries`` times; a batch exceeding its share of
    ``timeout`` is abandoned and the wedged pool restarted (terminated,
    respawned lazily — a hung process cannot outlive the call); whatever
    still fails goes through ``policy``.  Returns ``(results, reason)``
    where ``results`` is ``None`` only when the pool cannot be used at
    all (non-picklable strategy or target) — that reason is recorded,
    warned about, and the caller runs the whole module serially.
    """
    import multiprocessing

    from repro.regalloc import pool as pool_mod

    try:
        pickle.dumps((method, target))
    except Exception as error:
        reason = (
            f"parallel allocation (jobs={jobs}) fell back to serial: "
            f"method/target not picklable ({error!r})"
        )
        warnings.warn(reason, RuntimeWarning)
        return None, reason

    method_name = _method_for(method).name
    results: dict = {}
    cacheable = cache and isinstance(method, str) and not tracer.enabled
    workers = pool_mod.resolve_jobs(jobs, len(functions))

    def collect(function, response, started, ckpt_key=None):
        """Materialize one response into ``results``, or run it through
        retry + policy; mirrors the per-function semantics of the
        pre-pool driver.  With a checkpoint attached, the outcome —
        success, absorbed failure, degraded substitute — is journaled
        so a killed process resumes from it."""
        before = len(failures)
        journaled_response = None
        if response[0] == "error":
            result, attempts, retry_error = _serial_retry(
                function, target, method, kwargs, retries
            )
            if result is None:
                result = _handle_failure(
                    function, target, method_name,
                    retry_error or response[1], policy, failures,
                    bundle_dir, elapsed=time.perf_counter() - started,
                    retries=attempts, phase="worker-crash",
                )
        else:
            result, snapshot = pool_mod.materialize_response(
                response, target, method_name
            )
            journaled_response = response
            if snapshot is not None:
                tracer.absorb(snapshot)
        if result is not None:
            module.functions[result.function.name] = result.function
            results[result.function.name] = result
        if checkpoint is not None and ckpt_key is not None:
            new_failures = failures[before:]
            if new_failures:
                checkpoint.mark_failures(
                    ckpt_key, function.name, new_failures,
                    substitute=result,
                )
            elif result is not None:
                if journaled_response is not None:
                    checkpoint.mark_response(
                        ckpt_key, function.name, journaled_response
                    )
                else:
                    checkpoint.mark_result(ckpt_key, result)

    # Requests: (function, wire text, cache key or None, checkpoint
    # key or None).  Journal replays and cache hits are materialized
    # immediately; only misses reach the pool.
    dispatch = []
    for function in functions:
        if checkpoint is not None:
            if checkpoint.replay(function, module, results, failures):
                continue
            if _apply_poison(checkpoint, function, module, target,
                             method_name, policy, failures, bundle_dir,
                             results):
                continue
        wire_text = pool_mod.encode_request(function)
        key = (
            pool_mod.cache_key(wire_text, target, method, kwargs)
            if cacheable else None
        )
        ckpt_key = None
        hit = pool_mod.RESPONSE_CACHE.get(key)
        if hit is not None:
            if checkpoint is not None:
                ckpt_key = checkpoint.mark_start(function)
            collect(function, hit, time.perf_counter(), ckpt_key)
        else:
            dispatch.append((function, wire_text, key))

    if not dispatch:
        # Everything replayed (journal) or hit the cache — do not spin
        # up (or warm) a pool just to dispatch nothing.
        ordered = {
            function.name: results[function.name]
            for function in functions if function.name in results
        }
        return ordered, None

    pool = pool_mod.get_pool(workers)
    batches = pool_mod.plan_batches(
        dispatch, workers, weight=lambda item: len(item[1])
    )
    if checkpoint is not None:
        # Start records go down *before* dispatch — a kill between here
        # and collection re-executes exactly the in-flight functions —
        # and the worker pids are journaled so the torture harness can
        # prove no worker outlives a killed parent.
        batches = [
            [(function, text, key, checkpoint.mark_start(function))
             for function, text, key in batch]
            for batch in batches
        ]
    else:
        batches = [
            [(function, text, key, None)
             for function, text, key in batch]
            for batch in batches
        ]
    # The trace flag doubles as correlation: a service-stamped trace id
    # rides along so worker-lane spans carry the request that caused
    # them (workers only truth-test it, so the bool behavior is intact).
    trace_flag = tracer.enabled and (
        getattr(tracer, "trace_id", None) or True
    )
    pending = [
        (batch,
         pool.submit([text for _f, text, _k, _c in batch], target, method,
                     kwargs, trace_flag))
        for batch in batches
    ]
    if checkpoint is not None and pending:
        checkpoint.mark_workers(pool.worker_pids())
    wedged = False
    try:
        for batch, async_result in pending:
            started = time.perf_counter()
            budget = None if timeout is None else timeout * len(batch)
            try:
                responses = async_result.get(budget)
            except KeyboardInterrupt:
                wedged = True
                raise
            except multiprocessing.TimeoutError:
                # Some worker is wedged in a non-terminating allocation;
                # do not retry in-process (it would wedge the parent).
                # Every function in the lost batch is charged the
                # timeout; the pool is restarted on the way out.
                wedged = True
                elapsed = time.perf_counter() - started
                for function, _text, _key, ckpt_key in batch:
                    error = DriverTimeoutError(
                        f"allocation of {function.name} exceeded "
                        f"{timeout:g}s in a worker",
                        context={"function": function.name,
                                 "timeout": timeout},
                    )
                    before = len(failures)
                    result = _handle_failure(
                        function, target, method_name, error, policy,
                        failures, bundle_dir, elapsed=elapsed,
                        retries=0, phase="worker-timeout",
                    )
                    if result is not None:
                        module.functions[function.name] = result.function
                        results[function.name] = result
                    if checkpoint is not None and ckpt_key is not None:
                        checkpoint.mark_failures(
                            ckpt_key, function.name, failures[before:],
                            substitute=result,
                        )
                continue
            except Exception as error:
                # Transport-level batch loss (worker killed hard, or its
                # response did not unpickle): per-function retry + policy,
                # exactly as a per-function crash.
                for function, _text, _key, ckpt_key in batch:
                    collect(function, ("error", error), started, ckpt_key)
                continue
            for (function, _text, key, ckpt_key), response in zip(
                    batch, responses):
                if response[0] != "error":
                    pool_mod.RESPONSE_CACHE.put(key, response)
                collect(function, response, started, ckpt_key)
    finally:
        if wedged:
            pool.restart()
    # Module order, independent of batch schedule.
    ordered = {
        function.name: results[function.name]
        for function in functions if function.name in results
    }
    return ordered, None


def allocate_module(
    module: Module,
    target: Target,
    method="briggs",
    coalesce=True,
    renumber: bool = True,
    rematerialize: bool = False,
    split_ranges: bool = False,
    validate: bool = False,
    paranoia: str = "off",
    jobs: int = 1,
    policy="raise",
    timeout: float | None = None,
    retries: int = 1,
    bundle_dir=None,
    tracer=None,
    cache: bool = True,
    journal=None,
    resume: bool = True,
) -> ModuleAllocation:
    """Allocate every function of a module (in place).

    ``jobs`` > 1 allocates functions concurrently over the persistent
    worker pool (:mod:`repro.regalloc.pool`) — functions are
    independent, so the outcome is identical to the serial path
    (``jobs=1``), just cheaper to repeat: the pool is warmed once per
    process, requests travel as compact wire text, and with ``cache``
    (the default) finished responses are replayed content-addressed on
    identical requests.  ``jobs=0`` auto-detects one worker per CPU,
    clamped to the number of functions.  Non-picklable strategy objects
    fall back to serial allocation, with the reason recorded on
    :attr:`ModuleAllocation.parallel_fallback`.

    ``paranoia`` enables phase-boundary invariant checking in every
    function's cycle (see :mod:`repro.regalloc.invariants`).

    ``policy`` (a :class:`FailurePolicy` or its string value) decides what
    happens when one function's allocation fails; the default ``"raise"``
    propagates.  ``timeout`` bounds each worker (seconds); because only
    the pool's watchdog can reclaim a non-terminating allocation, any
    ``timeout`` routes the module through the worker pool — even a
    single-function module, even ``jobs=1`` — so the bound is enforced
    rather than advisory.  ``retries`` bounds in-process re-attempts
    after a worker crash.
    ``bundle_dir`` enables deterministic crash bundles
    (``<bundle_dir>/crash-<function>/``) for every recorded failure.

    ``tracer`` records a ``module:<name>`` span enclosing every
    function's span tree; under ``jobs > 1`` each worker traces into its
    own buffer and the parent merges them, one trace lane per worker
    process (see :mod:`repro.observability.trace`).

    ``journal`` (a path or :class:`repro.durability.Journal`) makes the
    allocation **durable**: every function's outcome is appended to a
    crash-safe write-ahead journal as it completes, and with ``resume``
    (the default) a journal left behind by a killed process replays its
    completed functions bit-identically instead of re-executing them —
    see :mod:`repro.durability.checkpoint`.  A journal written under a
    different configuration (target, method, flags) is reset, not
    reused.  Journaling requires a string method name (strategy objects
    may be stateful, so their outcomes must not be replayed); passing
    one disables the journal with a warning.
    """
    policy = FailurePolicy.coerce(policy)
    tracer = coerce_tracer(tracer)
    kwargs = {
        "coalesce": coalesce,
        "renumber": renumber,
        "rematerialize": rematerialize,
        "split_ranges": split_ranges,
        "validate": validate,
        "paranoia": coerce_paranoia(paranoia),
    }
    method_name = _method_for(method).name
    functions = list(module)
    if jobs != 1:
        from repro.regalloc.pool import resolve_jobs

        jobs = resolve_jobs(jobs, max(1, len(functions)))
    failures: list = []
    results = None
    fallback_reason = None
    checkpoint = None
    owned_journal = None
    if journal is not None:
        if not isinstance(method, str):
            warnings.warn(
                "journaling disabled: method is a strategy object, and "
                "a stateful strategy's outcomes must not be replayed",
                RuntimeWarning,
            )
        else:
            from repro.durability.checkpoint import Checkpoint
            from repro.durability.journal import coerce_journal

            journal_obj = coerce_journal(journal)
            if journal_obj is not journal:
                owned_journal = journal_obj
            checkpoint = Checkpoint(
                journal_obj, target, method_name, kwargs,
                resume=resume, tracer=tracer,
            )
    # A timeout can only be enforced from *outside* the allocation: the
    # pool watchdog abandons a wedged batch and restarts the workers,
    # while the in-process serial path has no way to interrupt a
    # non-terminating strategy.  So a timeout forces the pool path even
    # for one function or jobs=1 — otherwise the caller's deadline would
    # silently not exist exactly when it matters most (a hang).
    use_pool = bool(functions) and (
        (jobs > 1 and len(functions) > 1) or timeout is not None
    )
    try:
        with tracer.span(f"module:{module.name}", cat="module",
                         method=method_name, jobs=jobs):
            if use_pool:
                results, fallback_reason = _parallel_results(
                    module, functions, target, method, kwargs, jobs,
                    timeout, retries, policy, bundle_dir, failures,
                    tracer=tracer, cache=cache, checkpoint=checkpoint,
                )
            if results is None:
                results = {}
                for function in functions:
                    ckpt_key = None
                    if checkpoint is not None:
                        if checkpoint.replay(function, module, results,
                                             failures):
                            continue
                        if _apply_poison(checkpoint, function, module,
                                         target, method_name, policy,
                                         failures, bundle_dir, results):
                            continue
                        ckpt_key = checkpoint.mark_start(function)
                    started = time.perf_counter()
                    before = len(failures)
                    try:
                        result = allocate_function(
                            function, target, method, tracer=tracer,
                            **kwargs
                        )
                    except Exception as error:
                        # Not just AllocationError: a crashing *strategy*
                        # (injected faults, third-party heuristics) raises
                        # whatever it likes, and the policy must absorb it
                        # on the serial path exactly as the pool does for
                        # worker crashes — same program, same strategy,
                        # same outcome regardless of ``jobs``.
                        phase = "allocate"
                        if isinstance(error, ReproError):
                            phase = error.context.get("phase", "allocate")
                        result = _handle_failure(
                            function, target, method_name, error, policy,
                            failures, bundle_dir,
                            elapsed=time.perf_counter() - started,
                            retries=0,
                            phase=phase,
                        )
                    if result is not None:
                        results[function.name] = result
                    if checkpoint is not None:
                        new_failures = failures[before:]
                        if new_failures:
                            checkpoint.mark_failures(
                                ckpt_key, function.name, new_failures,
                                substitute=results.get(function.name),
                            )
                        elif result is not None:
                            checkpoint.mark_result(ckpt_key, result)
    finally:
        if owned_journal is not None:
            owned_journal.close()
    return ModuleAllocation(
        module, target, method_name, results,
        failures=failures, parallel_fallback=fallback_reason,
    )
