"""The allocation driver: Chaitin's Figure-4 loop.

::

    renumber -> build -> coalesce -> spill costs -> simplify -> select
         ^                                             |          |
         |                 spill code  <---------------+----------+
         +--------------------------------------------(if any spills)

Each pass times its phases (Figure 7) and records what spilled (Figures
5/6).  Both register classes are allocated in the same pass — the RT/PC's
GPRs and FPRs interfere only within their own file — and a pass that
spills in either class re-runs the cycle for the whole function.

``check_allocation`` independently re-derives interference on the final
code and verifies the coloring — the allocator's acceptance test.
"""

from __future__ import annotations

import time

from repro.analysis.cfg import CFG
from repro.analysis.liveness import Liveness
from repro.analysis.loops import annotate_loop_depths
from repro.analysis.webs import split_webs
from repro.errors import AllocationError
from repro.ir.function import Function
from repro.ir.module import Module
from repro.ir.values import RClass
from repro.machine.target import Target
from repro.regalloc.briggs import BriggsAllocator
from repro.regalloc.chaitin import ChaitinAllocator
from repro.regalloc.coalesce import coalesce_copies
from repro.regalloc.interference import build_interference_graph
from repro.regalloc.spill import insert_spill_code
from repro.regalloc.spill_costs import compute_spill_costs
from repro.regalloc.stats import AllocationStats, PassStats

_CLASSES = (RClass.INT, RClass.FLOAT)


def _method_for(name_or_method):
    if isinstance(name_or_method, str):
        if name_or_method == "chaitin":
            return ChaitinAllocator()
        if name_or_method == "briggs":
            return BriggsAllocator()
        if name_or_method == "briggs-degree":
            return BriggsAllocator(order="degree")
        if name_or_method == "spill-all":
            from repro.regalloc.naive import SpillAllAllocator

            return SpillAllAllocator()
        raise AllocationError(f"unknown allocation method {name_or_method!r}")
    return name_or_method


class AllocationResult:
    """Final coloring of one function plus its statistics."""

    __slots__ = ("function", "target", "method", "assignment", "stats")

    def __init__(self, function, target, method, assignment, stats):
        self.function = function
        self.target = target
        self.method = method
        #: VReg -> color for every register occurring in the final code.
        self.assignment = assignment
        self.stats = stats

    def __repr__(self) -> str:
        return (
            f"AllocationResult({self.method} on {self.function.name}: "
            f"{self.stats.pass_count} passes, "
            f"{self.stats.registers_spilled} spilled)"
        )


def allocate_function(
    function: Function,
    target: Target,
    method="briggs",
    coalesce=True,
    renumber: bool = True,
    rematerialize: bool = False,
    split_ranges: bool = False,
    max_passes: int = 30,
    validate: bool = False,
) -> AllocationResult:
    """Allocate registers for ``function`` in place (spill code may be
    inserted).  ``method`` is ``"chaitin"``, ``"briggs"``,
    ``"briggs-degree"`` or a strategy object.  ``rematerialize`` enables
    Chaitin's constant-rematerialization refinement for spilled ranges."""
    strategy = _method_for(method)
    stats = AllocationStats(strategy.name, function.name)
    assignment: dict = {}

    if split_ranges:
        from repro.regalloc.splitting import split_live_ranges

        split_live_ranges(function, target)

    for pass_index in range(1, max_passes + 1):
        pass_stats = PassStats(pass_index)
        stats.passes.append(pass_stats)

        # ---- build ---------------------------------------------------
        started = time.perf_counter()
        if renumber:
            split_webs(function)
        if coalesce:
            coalesce_strategy = (
                coalesce if isinstance(coalesce, str) else "aggressive"
            )
            pass_stats.coalesced = coalesce_copies(
                function, target, strategy=coalesce_strategy
            )
        liveness = Liveness(function, CFG(function))
        loop_info = annotate_loop_depths(function)
        graphs = {
            rclass: build_interference_graph(function, rclass, target, liveness)
            for rclass in _CLASSES
        }
        costs = compute_spill_costs(function, loop_info)
        pass_stats.live_ranges = sum(
            g.num_vreg_nodes for g in graphs.values()
        )
        pass_stats.edges = sum(g.edge_count() for g in graphs.values())
        pass_stats.build_time = time.perf_counter() - started

        # ---- simplify + select ----------------------------------------
        spilled_vregs: list = []
        class_colors: dict = {}
        for rclass in _CLASSES:
            graph = graphs[rclass]
            if graph.num_vreg_nodes == 0:
                continue  # nothing of this class occurs in the function
            outcome = strategy.allocate_class(
                graph, costs, target.color_order(rclass)
            )
            pass_stats.simplify_time += outcome.simplify_time
            pass_stats.select_time += outcome.select_time
            if outcome.ran_select:
                pass_stats.ran_select = True
            spilled_vregs.extend(outcome.spilled_vregs)
            class_colors.update(outcome.colors)

        if not spilled_vregs:
            assignment = class_colors
            break

        # ---- spill ----------------------------------------------------
        pass_stats.spilled_count = len(spilled_vregs)
        pass_stats.spilled_cost = sum(
            costs.cost(v) for v in spilled_vregs
        )
        started = time.perf_counter()
        insert_spill_code(function, spilled_vregs, rematerialize=rematerialize)
        pass_stats.spill_time = time.perf_counter() - started
    else:
        raise AllocationError(
            f"{function.name}: no coloring after {max_passes} passes "
            f"({strategy.name}, target {target.name})"
        )

    result = AllocationResult(
        function, target, strategy.name, assignment, stats
    )
    if validate:
        check_allocation(result)
    return result


def check_allocation(result: AllocationResult) -> None:
    """Independently verify the final coloring.

    Rebuilds liveness and interference on the final code and asserts:
    every occurring register has a color within its class's file; no two
    interfering registers share a color; nothing live across a call holds
    a caller-saved register.
    """
    function = result.function
    target = result.target
    assignment = result.assignment
    liveness = Liveness(function, CFG(function))

    occurring = set()
    for _block, _index, instr in function.instructions():
        occurring.update(instr.defs)
        occurring.update(instr.uses)
    for vreg in occurring:
        color = assignment.get(vreg)
        if color is None:
            raise AllocationError(f"{vreg!r} occurs but has no color")
        if not 0 <= color < target.regs(vreg.rclass):
            raise AllocationError(
                f"{vreg!r} colored {color}, outside the "
                f"{target.regs(vreg.rclass)}-register file"
            )

    for rclass in _CLASSES:
        graph = build_interference_graph(function, rclass, target, liveness)
        for node in range(graph.k, graph.num_nodes):
            vreg = graph.vreg_for(node)
            for neighbor in graph.neighbors(node):
                if neighbor < graph.k:
                    if assignment[vreg] == neighbor:
                        raise AllocationError(
                            f"{vreg!r} colored {assignment[vreg]} but "
                            f"interferes with that physical register"
                        )
                elif neighbor > node:
                    other = graph.vreg_for(neighbor)
                    if assignment[vreg] == assignment[other]:
                        raise AllocationError(
                            f"{vreg!r} and {other!r} interfere but share "
                            f"color {assignment[vreg]}"
                        )


class ModuleAllocation:
    """Per-function results plus the merged assignment the simulator and
    encoder consume."""

    __slots__ = ("module", "target", "method", "results", "assignment")

    def __init__(self, module, target, method, results):
        self.module = module
        self.target = target
        self.method = method
        self.results = results  # name -> AllocationResult
        self.assignment = {}
        for result in results.values():
            self.assignment.update(result.assignment)

    def result(self, name: str) -> AllocationResult:
        return self.results[name]

    def total_spilled(self) -> int:
        return sum(r.stats.registers_spilled for r in self.results.values())

    def __repr__(self) -> str:
        return (
            f"ModuleAllocation({self.method}, {len(self.results)} functions, "
            f"{self.total_spilled()} spilled)"
        )


def allocate_module(
    module: Module,
    target: Target,
    method="briggs",
    coalesce=True,
    renumber: bool = True,
    rematerialize: bool = False,
    split_ranges: bool = False,
    validate: bool = False,
) -> ModuleAllocation:
    """Allocate every function of a module (in place)."""
    results = {}
    for function in module:
        results[function.name] = allocate_function(
            function,
            target,
            method,
            coalesce=coalesce,
            renumber=renumber,
            rematerialize=rematerialize,
            split_ranges=split_ranges,
            validate=validate,
        )
    name = _method_for(method).name
    return ModuleAllocation(module, target, name, results)
