"""The allocation driver: Chaitin's Figure-4 loop.

::

    renumber -> build -> coalesce -> spill costs -> simplify -> select
         ^                                             |          |
         |                 spill code  <---------------+----------+
         +--------------------------------------------(if any spills)

Each pass times its phases (Figure 7) and records what spilled (Figures
5/6).  Both register classes are allocated in the same pass — the RT/PC's
GPRs and FPRs interfere only within their own file — and a pass that
spills in either class re-runs the cycle for the whole function.

The loop reuses what later passes cannot change: spill code only inserts
instructions *inside* existing blocks, so the CFG and the loop nesting of
every block are computed once, in the first pass, and carried across
passes.  Renumbering and coalescing are skipped once a pass finds nothing
to split or merge — spill temporaries are excluded from both transforms,
so a fixed point stays a fixed point (aggressive coalescing only; the
conservative variant's degree test can change after a spill, so it always
re-runs).  ``PassStats.reused`` records exactly what was carried over.

``check_allocation`` independently re-derives interference on the final
code and verifies the coloring — the allocator's acceptance test.

``allocate_module`` fans independent functions out over a process pool
when ``jobs > 1``; results are deterministic and bit-identical to the
serial path.
"""

from __future__ import annotations

import pickle
import time

from repro.analysis.cfg import CFG
from repro.analysis.liveness import Liveness
from repro.analysis.loops import annotate_loop_depths
from repro.analysis.webs import split_webs
from repro.errors import AllocationError
from repro.ir.function import Function
from repro.ir.module import Module
from repro.ir.values import RClass
from repro.machine.target import Target
from repro.regalloc.briggs import BriggsAllocator
from repro.regalloc.chaitin import ChaitinAllocator
from repro.regalloc.coalesce import coalesce_copies
from repro.regalloc.interference import (
    build_interference_graph,
    build_interference_graphs,
)
from repro.regalloc.spill import insert_spill_code
from repro.regalloc.spill_costs import compute_spill_costs
from repro.regalloc.stats import AllocationStats, PassStats

_CLASSES = (RClass.INT, RClass.FLOAT)


def _method_for(name_or_method):
    if isinstance(name_or_method, str):
        if name_or_method == "chaitin":
            return ChaitinAllocator()
        if name_or_method == "briggs":
            return BriggsAllocator()
        if name_or_method == "briggs-degree":
            return BriggsAllocator(order="degree")
        if name_or_method == "spill-all":
            from repro.regalloc.naive import SpillAllAllocator

            return SpillAllAllocator()
        raise AllocationError(f"unknown allocation method {name_or_method!r}")
    return name_or_method


class AllocationResult:
    """Final coloring of one function plus its statistics."""

    __slots__ = ("function", "target", "method", "assignment", "stats")

    def __init__(self, function, target, method, assignment, stats):
        self.function = function
        self.target = target
        self.method = method
        #: VReg -> color for every register occurring in the final code.
        self.assignment = assignment
        self.stats = stats

    def __repr__(self) -> str:
        return (
            f"AllocationResult({self.method} on {self.function.name}: "
            f"{self.stats.pass_count} passes, "
            f"{self.stats.registers_spilled} spilled)"
        )


def allocate_function(
    function: Function,
    target: Target,
    method="briggs",
    coalesce=True,
    renumber: bool = True,
    rematerialize: bool = False,
    split_ranges: bool = False,
    max_passes: int = 30,
    validate: bool = False,
) -> AllocationResult:
    """Allocate registers for ``function`` in place (spill code may be
    inserted).  ``method`` is ``"chaitin"``, ``"briggs"``,
    ``"briggs-degree"`` or a strategy object.  ``rematerialize`` enables
    Chaitin's constant-rematerialization refinement for spilled ranges."""
    strategy = _method_for(method)
    stats = AllocationStats(strategy.name, function.name)
    assignment: dict = {}

    if split_ranges:
        from repro.regalloc.splitting import split_live_ranges

        split_live_ranges(function, target)

    coalesce_strategy = coalesce if isinstance(coalesce, str) else "aggressive"
    # Cross-pass caches.  Spill code never adds or removes blocks and never
    # rewrites terminators, so the CFG and loop nesting computed in the
    # first pass hold for every later one.
    cfg = None
    loop_info = None
    # Renumber/coalesce fixed point (see module docstring).  The two feed
    # each other — a split can expose a merge and vice versa — so both are
    # skipped only once a single pass observed *neither* doing anything.
    # Spill code cannot disturb that state (spill temporaries are excluded
    # from both transforms), except through the conservative coalescer's
    # degree test, which is why only the aggressive strategy settles.
    build_settled = False

    for pass_index in range(1, max_passes + 1):
        pass_stats = PassStats(pass_index)
        stats.passes.append(pass_stats)
        reused: list = []

        # ---- build ---------------------------------------------------
        started = time.perf_counter()
        if renumber:
            if build_settled:
                reused.append("renumber")
            else:
                pass_stats.webs_split = split_webs(function)
        if coalesce:
            if build_settled:
                reused.append("coalesce")
            else:
                pass_stats.coalesced = coalesce_copies(
                    function, target, strategy=coalesce_strategy
                )
        if not build_settled:
            coalesce_quiet = not coalesce or (
                pass_stats.coalesced == 0
                and coalesce_strategy == "aggressive"
            )
            if pass_stats.webs_split == 0 and coalesce_quiet:
                build_settled = True
        if cfg is None:
            cfg = CFG(function)
        else:
            reused.append("cfg")
        liveness = Liveness(function, cfg)
        if loop_info is None:
            loop_info = annotate_loop_depths(function, cfg)
        else:
            reused.append("loops")
        pass_stats.reused = tuple(reused)
        graphs = build_interference_graphs(
            function, target, liveness, rclasses=_CLASSES
        )
        costs = compute_spill_costs(function, loop_info)
        pass_stats.live_ranges = sum(
            g.num_vreg_nodes for g in graphs.values()
        )
        pass_stats.edges = sum(g.edge_count() for g in graphs.values())
        pass_stats.build_time = time.perf_counter() - started

        # ---- simplify + select ----------------------------------------
        spilled_vregs: list = []
        class_colors: dict = {}
        for rclass in _CLASSES:
            graph = graphs[rclass]
            if graph.num_vreg_nodes == 0:
                continue  # nothing of this class occurs in the function
            outcome = strategy.allocate_class(
                graph, costs, target.color_order(rclass)
            )
            pass_stats.simplify_time += outcome.simplify_time
            pass_stats.select_time += outcome.select_time
            if outcome.ran_select:
                pass_stats.ran_select = True
            spilled_vregs.extend(outcome.spilled_vregs)
            class_colors.update(outcome.colors)

        if not spilled_vregs:
            assignment = class_colors
            break

        # ---- spill ----------------------------------------------------
        pass_stats.spilled_count = len(spilled_vregs)
        pass_stats.spilled_cost = sum(
            costs.cost(v) for v in spilled_vregs
        )
        started = time.perf_counter()
        insert_spill_code(function, spilled_vregs, rematerialize=rematerialize)
        pass_stats.spill_time = time.perf_counter() - started
    else:
        raise AllocationError(
            f"{function.name}: no coloring after {max_passes} passes "
            f"({strategy.name}, target {target.name})"
        )

    result = AllocationResult(
        function, target, strategy.name, assignment, stats
    )
    if validate:
        check_allocation(result)
    return result


def check_allocation(result: AllocationResult) -> None:
    """Independently verify the final coloring.

    Rebuilds liveness and interference on the final code and asserts:
    every occurring register has a color within its class's file; no two
    interfering registers share a color; nothing live across a call holds
    a caller-saved register.
    """
    function = result.function
    target = result.target
    assignment = result.assignment
    liveness = Liveness(function, CFG(function))

    occurring = set()
    for _block, _index, instr in function.instructions():
        occurring.update(instr.defs)
        occurring.update(instr.uses)
    for vreg in occurring:
        color = assignment.get(vreg)
        if color is None:
            raise AllocationError(f"{vreg!r} occurs but has no color")
        if not 0 <= color < target.regs(vreg.rclass):
            raise AllocationError(
                f"{vreg!r} colored {color}, outside the "
                f"{target.regs(vreg.rclass)}-register file"
            )

    for rclass in _CLASSES:
        graph = build_interference_graph(function, rclass, target, liveness)
        for node in range(graph.k, graph.num_nodes):
            vreg = graph.vreg_for(node)
            for neighbor in graph.neighbors(node):
                if neighbor < graph.k:
                    if assignment[vreg] == neighbor:
                        raise AllocationError(
                            f"{vreg!r} colored {assignment[vreg]} but "
                            f"interferes with that physical register"
                        )
                elif neighbor > node:
                    other = graph.vreg_for(neighbor)
                    if assignment[vreg] == assignment[other]:
                        raise AllocationError(
                            f"{vreg!r} and {other!r} interfere but share "
                            f"color {assignment[vreg]}"
                        )


class ModuleAllocation:
    """Per-function results plus the merged assignment the simulator and
    encoder consume."""

    __slots__ = ("module", "target", "method", "results", "assignment")

    def __init__(self, module, target, method, results):
        self.module = module
        self.target = target
        self.method = method
        self.results = results  # name -> AllocationResult
        self.assignment = {}
        for result in results.values():
            self.assignment.update(result.assignment)

    def result(self, name: str) -> AllocationResult:
        return self.results[name]

    def total_spilled(self) -> int:
        return sum(r.stats.registers_spilled for r in self.results.values())

    def __repr__(self) -> str:
        return (
            f"ModuleAllocation({self.method}, {len(self.results)} functions, "
            f"{self.total_spilled()} spilled)"
        )


def _allocate_worker(function, target, method, kwargs):
    """Process-pool entry point: allocate one pickled function copy."""
    return allocate_function(function, target, method, **kwargs)


def _parallel_results(module, functions, target, method, kwargs, jobs):
    """Allocate ``functions`` over a process pool.

    Each worker receives a pickled copy of its function and returns the
    allocated copy (spill code inserted) together with the assignment over
    that copy's registers; the parent swaps the copies into the module so
    every downstream consumer (simulator, encoder) sees one consistent
    object graph.  Returns ``None`` when the strategy or target cannot
    cross a process boundary — the caller falls back to the serial path.
    """
    from concurrent.futures import ProcessPoolExecutor

    try:
        pickle.dumps((method, target))
    except Exception:
        return None  # non-picklable strategy object: run serial

    results: dict = {}
    workers = max(1, min(jobs, len(functions)))
    with ProcessPoolExecutor(max_workers=workers) as pool:
        futures = [
            pool.submit(_allocate_worker, function, target, method, kwargs)
            for function in functions
        ]
        for future in futures:
            result = future.result()
            module.functions[result.function.name] = result.function
            results[result.function.name] = result
    return results


def allocate_module(
    module: Module,
    target: Target,
    method="briggs",
    coalesce=True,
    renumber: bool = True,
    rematerialize: bool = False,
    split_ranges: bool = False,
    validate: bool = False,
    jobs: int = 1,
) -> ModuleAllocation:
    """Allocate every function of a module (in place).

    ``jobs`` > 1 allocates functions concurrently in a process pool —
    functions are independent, so the outcome is identical to the serial
    path (``jobs=1``), just faster on multi-function modules.  ``jobs=0``
    uses one worker per CPU.  Non-picklable strategy objects fall back to
    serial allocation.
    """
    kwargs = {
        "coalesce": coalesce,
        "renumber": renumber,
        "rematerialize": rematerialize,
        "split_ranges": split_ranges,
        "validate": validate,
    }
    if jobs == 0:
        import os

        jobs = os.cpu_count() or 1
    functions = list(module)
    results = None
    if jobs > 1 and len(functions) > 1:
        results = _parallel_results(
            module, functions, target, method, kwargs, jobs
        )
    if results is None:
        results = {
            function.name: allocate_function(
                function, target, method, **kwargs
            )
            for function in functions
        }
    name = _method_for(method).name
    return ModuleAllocation(module, target, name, results)
