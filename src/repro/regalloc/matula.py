"""Standalone Matula–Beck smallest-last ordering and greedy coloring.

The paper's §2.2 credits Matula & Beck [MaBe 81] for the key data
structure and for the observation that coloring in reverse smallest-last
order is both linear-time and stronger than Chaitin's simplification.
This module exposes the algorithm over a *plain* graph (no precolored
nodes, no costs) — used by the unit/property tests and by the ablation
benchmarks as the pure graph-coloring reference point.
"""

from __future__ import annotations

from repro.regalloc.worklists import DegreeBuckets


def smallest_last_order(adjacency: list) -> list:
    """Smallest-last vertex ordering of a graph given as adjacency lists.

    Returns the vertices in *removal* order: each vertex had minimum
    degree in the subgraph remaining when it was removed.  Reversing the
    result gives the coloring order.  Runs in O(V + E).
    """
    n = len(adjacency)
    if n == 0:
        return []
    buckets = DegreeBuckets(n, max_degree=max(1, n))
    removed = [False] * n
    for node in range(n):
        buckets.add(node, len(adjacency[node]))
    order = []
    while len(buckets):
        node = buckets.pop_min()
        order.append(node)
        removed[node] = True
        for neighbor in adjacency[node]:
            if not removed[neighbor]:
                buckets.decrement(neighbor)
    return order


def greedy_color(adjacency: list, order: list | None = None) -> list:
    """First-fit coloring in reverse smallest-last order.

    Returns a color per vertex.  Uses at most ``1 + max over the ordering
    of the back-degree`` colors — the Matula–Beck bound (equal to one plus
    the graph's degeneracy when the smallest-last order is used).
    """
    n = len(adjacency)
    if order is None:
        order = smallest_last_order(adjacency)
    else:
        _validate_order(order, n)
    colors = [-1] * n
    for node in reversed(order):
        taken = 0
        for neighbor in adjacency[node]:
            color = colors[neighbor]
            if color >= 0:
                taken |= 1 << color
        color = 0
        while (taken >> color) & 1:
            color += 1
        colors[node] = color
    return colors


def _validate_order(order: list, n: int) -> None:
    """A caller-supplied order must be a permutation of range(n).

    Without this, a short order silently leaves vertices uncolored at -1
    and a duplicated vertex is recolored against a half-built taken mask
    — both produce a wrong coloring with no error.
    """
    if len(order) != n:
        raise ValueError(
            f"order has {len(order)} entries for a {n}-vertex graph")
    seen = [False] * n
    for vertex in order:
        if not 0 <= vertex < n:
            raise ValueError(f"order contains out-of-range vertex {vertex!r}")
        if seen[vertex]:
            raise ValueError(f"order lists vertex {vertex} more than once")
        seen[vertex] = True


def degeneracy(adjacency: list) -> int:
    """Graph degeneracy: max, over the smallest-last removal, of the degree
    at removal time.  ``degeneracy + 1`` bounds the greedy color count."""
    n = len(adjacency)
    if n == 0:
        return 0
    buckets = DegreeBuckets(n, max_degree=max(1, n))
    removed = [False] * n
    for node in range(n):
        buckets.add(node, len(adjacency[node]))
    worst = 0
    while len(buckets):
        degree = buckets.min_degree()
        worst = max(worst, degree)
        node = buckets.pop_min()
        removed[node] = True
        for neighbor in adjacency[node]:
            if not removed[neighbor]:
                buckets.decrement(neighbor)
    return worst
