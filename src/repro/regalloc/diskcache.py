"""Checksummed disk tier for the response cache.

The in-memory :class:`~repro.regalloc.pool.ResponseCache` dies with the
process; this tier persists finished worker responses so warm starts
survive restarts — the ROADMAP's allocation-as-a-service direction needs
exactly that.  Robustness is the design center, not an afterthought: a
disk cache that trusts its own files turns one torn write into silently
wrong allocations forever after, so every entry is **verified on read
and quarantined on the first sign of damage**:

* an entry file is ``<header line>\\n<payload>`` where the header is
  ``repro-diskcache/1 <sha256(payload)> <len(payload)>`` — version,
  checksum, and exact length all declared up front;
* :meth:`DiskCache.get` re-derives all three before returning a byte of
  payload.  A wrong magic (format drift), a short or long payload
  (truncation, concatenation), or a checksum mismatch (bit rot, a
  flipped byte) **quarantines** the file — moved aside under
  ``quarantine/`` with a ``.reason`` note, counted, and reported as a
  miss so the caller recomputes from scratch;
* writes are atomic: payloads land in a per-pid temp file first and are
  ``os.replace``\\d into place, so a concurrent reader sees either the
  old complete entry or the new complete entry, never a torn hybrid.
  A *writer* that dies mid-write leaves only a ``.tmp`` turd that no
  reader ever opens.

Keys are the pool's content addresses (wire text + target + method +
kwargs, see :func:`repro.regalloc.pool.cache_key`); the file name is the
SHA-256 of the key's canonical ``repr``, which is stable across
processes for the str/int/float/tuple values those keys contain.
Payloads are opaque bytes to this module — the
:class:`~repro.regalloc.pool.ResponseCache` stores its pickled response
tuples and owns (de)serialization on both sides.
"""

from __future__ import annotations

import hashlib
import itertools
import os
import pathlib

__all__ = ["DiskCache", "DISK_CACHE_MAGIC"]

#: First token of every entry header; bump on any format change so old
#: processes quarantine (never misread) new files and vice versa.
DISK_CACHE_MAGIC = "repro-diskcache/1"

_TMP_COUNTER = itertools.count()


def key_digest(key) -> str:
    """Stable file-name digest of one cache key."""
    return hashlib.sha256(repr(key).encode("utf-8")).hexdigest()


class DiskCache:
    """A directory of checksummed, atomically-written cache entries."""

    def __init__(self, root, quarantine: bool = True,
                 max_quarantine: int = 64):
        self.root = pathlib.Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        #: move damaged entries aside (False deletes them outright).
        self.keep_quarantined = quarantine
        #: newest quarantined entries retained on disk; older ones are
        #: pruned at quarantine time so a bit-rot storm (or a chaos
        #: soak) cannot leak unbounded ``quarantine/`` debris.  The
        #: in-memory counters and ``quarantine_log`` still see every
        #: event.  ``None`` disables the cap.
        self.max_quarantine = max_quarantine
        self.hits = 0
        self.misses = 0
        self.stores = 0
        self.quarantined = 0
        #: (digest, reason) per quarantined entry, newest last.
        self.quarantine_log: list = []

    # -- paths ---------------------------------------------------------

    def _path(self, key) -> pathlib.Path:
        return self.root / f"{key_digest(key)}.entry"

    def entry_paths(self) -> list:
        """Live entry files (sorted; excludes temp and quarantined)."""
        return sorted(self.root.glob("*.entry"))

    def __len__(self) -> int:
        return len(self.entry_paths())

    # -- read side -----------------------------------------------------

    def get(self, key) -> bytes | None:
        """The verified payload for ``key``, or ``None`` on a miss.

        Any structural damage — unreadable file, bad header, wrong
        version, truncated or oversized payload, checksum mismatch —
        quarantines the entry and falls through to a miss, so a damaged
        cache can only ever cost a recompute, never a wrong answer.
        """
        path = self._path(key)
        try:
            raw = path.read_bytes()
        except FileNotFoundError:
            self.misses += 1
            return None
        except OSError as error:
            self._quarantine(path, f"unreadable: {error!r}")
            self.misses += 1
            return None
        payload = self._verify(path, raw)
        if payload is None:
            self.misses += 1
            return None
        self.hits += 1
        return payload

    def _verify(self, path, raw: bytes) -> bytes | None:
        newline = raw.find(b"\n")
        if newline < 0:
            self._quarantine(path, "no header line (truncated write)")
            return None
        try:
            header = raw[:newline].decode("ascii")
        except UnicodeDecodeError:
            self._quarantine(path, "undecodable header")
            return None
        fields = header.split()
        if len(fields) != 3:
            self._quarantine(path, f"malformed header {header!r}")
            return None
        magic, digest, length_text = fields
        if magic != DISK_CACHE_MAGIC:
            self._quarantine(path, f"wrong version {magic!r} "
                                   f"(expected {DISK_CACHE_MAGIC})")
            return None
        try:
            length = int(length_text)
        except ValueError:
            self._quarantine(path, f"non-integer length {length_text!r}")
            return None
        payload = raw[newline + 1:]
        if len(payload) != length:
            self._quarantine(
                path,
                f"payload is {len(payload)} bytes, header declares "
                f"{length} (truncated or torn write)",
            )
            return None
        actual = hashlib.sha256(payload).hexdigest()
        if actual != digest:
            self._quarantine(path, "checksum mismatch (corrupt payload)")
            return None
        return payload

    def _quarantine(self, path: pathlib.Path, reason: str) -> None:
        """Move a damaged entry out of the lookup path, on record."""
        self.quarantined += 1
        self.quarantine_log.append((path.name, reason))
        try:
            if self.keep_quarantined:
                qdir = self.root / "quarantine"
                qdir.mkdir(exist_ok=True)
                os.replace(path, qdir / path.name)
                (qdir / f"{path.name}.reason").write_text(reason + "\n")
                self._prune_quarantine(qdir)
            else:
                path.unlink()
        except OSError:
            # A concurrent reader may have quarantined it first; either
            # way the entry is no longer served, which is what matters.
            pass

    def _prune_quarantine(self, qdir: pathlib.Path) -> None:
        """Drop the oldest quarantined entries beyond ``max_quarantine``."""
        if self.max_quarantine is None:
            return
        entries = sorted(
            qdir.glob("*.entry"),
            key=lambda p: (p.stat().st_mtime, p.name),
        )
        excess = len(entries) - self.max_quarantine
        if excess <= 0:
            return
        for stale in entries[:excess]:
            for victim in (stale, qdir / f"{stale.name}.reason"):
                try:
                    victim.unlink()
                except OSError:
                    pass

    # -- write side ----------------------------------------------------

    def put(self, key, payload: bytes) -> None:
        """Atomically persist ``payload`` under ``key``.

        Best-effort: a full disk or unwritable directory degrades to a
        cold cache, never to an error on the allocation path.
        """
        path = self._path(key)
        header = (
            f"{DISK_CACHE_MAGIC} {hashlib.sha256(payload).hexdigest()} "
            f"{len(payload)}\n"
        ).encode("ascii")
        tmp = path.with_name(
            f"{path.name}.{os.getpid()}.{next(_TMP_COUNTER)}.tmp"
        )
        try:
            tmp.write_bytes(header + payload)
            os.replace(tmp, path)
            self.stores += 1
        except OSError:
            try:
                tmp.unlink()
            except OSError:
                pass

    # -- introspection -------------------------------------------------

    def stats(self) -> dict:
        return {
            "root": str(self.root),
            "entries": len(self),
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "quarantined": self.quarantined,
        }

    def __repr__(self) -> str:
        return (
            f"DiskCache({self.root}, {len(self)} entries, "
            f"{self.quarantined} quarantined)"
        )
