"""Interference graph construction (Chaitin's build phase).

One graph per register class.  Node numbering:

* nodes ``0 .. k-1`` are **precolored**: the physical registers of the
  class (color ``i`` = register ``i``).  They are never simplified and
  never spilled;
* nodes ``k ..`` are the virtual registers of the class that occur in the
  function, in first-occurrence order.

Edges come from the classic rule: at every definition point, the defined
register interferes with everything live *after* the instruction — minus
the source of a copy (``mov d, s`` does not make ``d`` and ``s``
interfere, which is what lets the coalescer merge them).  At a ``call``,
every value live across the call gains an edge to each **caller-saved**
physical register, so such values can only be colored with callee-saved
registers — Chaitin's way of encoding the calling convention in the graph.

The graph keeps both representations Chaitin recommends: a bit matrix for
O(1) membership (``interferes``) and adjacency lists for neighbor walks.
"""

from __future__ import annotations

from repro.analysis.cfg import CFG
from repro.analysis.liveness import Liveness
from repro.errors import AllocationError
from repro.ir.function import Function
from repro.ir.values import RClass
from repro.machine.target import Target


class InterferenceGraph:
    """Undirected graph over precolored + virtual nodes of one class."""

    def __init__(self, rclass: RClass, k: int):
        self.rclass = rclass
        self.k = k
        self.vregs: list = []  # node index - k  ->  VReg
        self.node_of: dict = {}  # VReg -> node index
        self.adj_mask: list = [0] * k  # bit matrix rows (grows with nodes)
        self.adj_list: list | None = None  # built by freeze()
        # Precolored nodes mutually interfere (distinct physical registers).
        for a in range(k):
            for b in range(a + 1, k):
                self.adj_mask[a] |= 1 << b
                self.adj_mask[b] |= 1 << a

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    def ensure_node(self, vreg) -> int:
        if vreg.rclass != self.rclass:
            raise AllocationError(
                f"{vreg!r} is not class {self.rclass}"
            )
        node = self.node_of.get(vreg)
        if node is None:
            node = self.k + len(self.vregs)
            self.node_of[vreg] = node
            self.vregs.append(vreg)
            self.adj_mask.append(0)
        return node

    def add_edge(self, a: int, b: int) -> None:
        if a == b:
            return
        self.adj_mask[a] |= 1 << b
        self.adj_mask[b] |= 1 << a

    def freeze(self) -> None:
        """Materialise adjacency lists once construction is done."""
        self.adj_list = []
        for node in range(self.num_nodes):
            mask = self.adj_mask[node]
            neighbors = []
            index = 0
            while mask:
                if mask & 1:
                    neighbors.append(index)
                mask >>= 1
                index += 1
            self.adj_list.append(neighbors)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    @property
    def num_nodes(self) -> int:
        return self.k + len(self.vregs)

    @property
    def num_vreg_nodes(self) -> int:
        return len(self.vregs)

    def is_precolored(self, node: int) -> bool:
        return node < self.k

    def vreg_for(self, node: int):
        return self.vregs[node - self.k]

    def interferes(self, a: int, b: int) -> bool:
        return bool((self.adj_mask[a] >> b) & 1)

    def neighbors(self, node: int) -> list:
        if self.adj_list is None:
            raise AllocationError("freeze() the graph before neighbor walks")
        return self.adj_list[node]

    def degree(self, node: int) -> int:
        return len(self.neighbors(node))

    def edge_count(self) -> int:
        """Number of undirected edges (including precolored clique)."""
        total = sum(bin(mask).count("1") for mask in self.adj_mask)
        return total // 2

    def __repr__(self) -> str:
        return (
            f"InterferenceGraph({self.rclass}, k={self.k}, "
            f"{self.num_vreg_nodes} vregs, {self.edge_count()} edges)"
        )


def _class_mask(function: Function, rclass: RClass) -> int:
    mask = 0
    for vreg in function.vregs:
        if vreg.rclass == rclass:
            mask |= 1 << vreg.id
    return mask


def build_interference_graph(
    function: Function,
    rclass: RClass,
    target: Target,
    liveness: Liveness | None = None,
) -> InterferenceGraph:
    """Build the interference graph of one register class.

    ``liveness`` may be passed in to share a computation between the two
    classes of one build phase.
    """
    k = target.regs(rclass)
    graph = InterferenceGraph(rclass, k)
    liveness = liveness or Liveness(function, CFG(function))
    class_mask = _class_mask(function, rclass)
    by_id = {v.id: v for v in function.vregs}
    caller_saved = sorted(target.caller_saved(rclass))

    # Make sure every occurring vreg has a node even if it never interferes.
    # Parameters are all defined simultaneously by the (implicit) prologue,
    # so they mutually interfere — without this, two arguments could share
    # a register and the later write would destroy the earlier value.
    class_params = [p for p in function.params if p.rclass == rclass]
    for param in class_params:
        graph.ensure_node(param)
    for index, first in enumerate(class_params):
        for second in class_params[index + 1 :]:
            graph.add_edge(graph.ensure_node(first), graph.ensure_node(second))
    # Anything else live at function entry (only possible for parameters in
    # verified IR, but kept general) interferes with every parameter.
    entry_live = liveness.live_in[function.entry.label] & class_mask
    masked = entry_live
    while masked:
        low = masked & -masked
        masked ^= low
        vreg = by_id[low.bit_length() - 1]
        node = graph.ensure_node(vreg)
        for param in class_params:
            graph.add_edge(node, graph.ensure_node(param))
    for _block, _index, instr in function.instructions():
        for vreg in instr.defs:
            if vreg.rclass == rclass:
                graph.ensure_node(vreg)
        for vreg in instr.uses:
            if vreg.rclass == rclass:
                graph.ensure_node(vreg)

    def live_nodes(mask: int):
        masked = mask & class_mask
        while masked:
            low = masked & -masked
            masked ^= low
            yield graph.ensure_node(by_id[low.bit_length() - 1])

    for block in function.blocks:
        live = liveness.live_out[block.label]
        for instr in reversed(block.instrs):
            defs_mask = 0
            for d in instr.defs:
                defs_mask |= 1 << d.id

            if instr.is_call:
                # Values live across the call cannot sit in caller-saved
                # registers.  (The call's own result is defined after the
                # clobber point, so it is exempt.)
                across = live & ~defs_mask
                for node in live_nodes(across):
                    for color in caller_saved:
                        graph.add_edge(node, color)

            copy_source_mask = 0
            if instr.is_copy:
                copy_source_mask = 1 << instr.uses[0].id

            for d in instr.defs:
                if d.rclass != rclass:
                    continue
                d_node = graph.ensure_node(d)
                interfering = live & ~(1 << d.id) & ~copy_source_mask
                for node in live_nodes(interfering):
                    graph.add_edge(d_node, node)

            live = (live & ~defs_mask)
            for u in instr.uses:
                live |= 1 << u.id

    graph.freeze()
    return graph
