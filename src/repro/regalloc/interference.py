"""Interference graph construction (Chaitin's build phase).

One graph per register class.  Node numbering:

* nodes ``0 .. k-1`` are **precolored**: the physical registers of the
  class (color ``i`` = register ``i``).  They are never simplified and
  never spilled;
* nodes ``k ..`` are the virtual registers of the class that occur in the
  function, in first-occurrence order.

Edges come from the classic rule: at every definition point, the defined
register interferes with everything live *after* the instruction — minus
the source of a copy (``mov d, s`` does not make ``d`` and ``s``
interfere, which is what lets the coalescer merge them).  At a ``call``,
every value live across the call gains an edge to each **caller-saved**
physical register, so such values can only be colored with callee-saved
registers — Chaitin's way of encoding the calling convention in the graph.

The graph keeps both representations Chaitin recommends: a bit matrix for
O(1) membership (``interferes``) and adjacency lists for neighbor walks.

Both register classes are built by **one** backward walk over the
instructions (:func:`build_interference_graphs`): the live set is a single
bitset over all virtual registers, and each definition point updates only
the graph of its own class.  The per-class :func:`build_interference_graph`
is a thin wrapper kept for callers that want one class.  All mask walks
use the O(popcount) kernels from :mod:`repro.analysis.bitset`.
"""

from __future__ import annotations

from repro.analysis.bitset import bits_list, iter_bits, popcount
from repro.analysis.cfg import CFG
from repro.analysis.liveness import Liveness
from repro.errors import AllocationError
from repro.ir.function import Function
from repro.ir.values import RClass
from repro.machine.target import Target

#: The register classes of the target machine, in allocation order.
DEFAULT_CLASSES = (RClass.INT, RClass.FLOAT)


class InterferenceGraph:
    """Undirected graph over precolored + virtual nodes of one class."""

    def __init__(self, rclass: RClass, k: int):
        self.rclass = rclass
        self.k = k
        self.vregs: list = []  # node index - k  ->  VReg
        self.node_of: dict = {}  # VReg -> node index
        self.adj_mask: list = [0] * k  # bit matrix rows (grows with nodes)
        self.adj_list: list | None = None  # built by freeze()
        self._edge_count: int | None = None  # cached by freeze()/edge_count()
        # Precolored nodes mutually interfere (distinct physical registers).
        full = (1 << k) - 1
        for a in range(k):
            self.adj_mask[a] = full & ~(1 << a)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    def ensure_node(self, vreg) -> int:
        if vreg.rclass != self.rclass:
            raise AllocationError(
                f"{vreg!r} is not class {self.rclass}"
            )
        node = self.node_of.get(vreg)
        if node is None:
            node = self.k + len(self.vregs)
            self.node_of[vreg] = node
            self.vregs.append(vreg)
            self.adj_mask.append(0)
        return node

    def add_edge(self, a: int, b: int) -> None:
        if a == b:
            return
        self.adj_mask[a] |= 1 << b
        self.adj_mask[b] |= 1 << a
        self._edge_count = None

    def freeze(self) -> None:
        """Materialise adjacency lists once construction is done.

        Each row is decoded with the lowest-set-bit kernel, so the cost is
        the number of *edges*, not nodes², and the edge count falls out of
        the decoding for free (cached for ``edge_count``).
        """
        adj_list = []
        endpoint_total = 0
        for mask in self.adj_mask:
            neighbors = bits_list(mask)
            endpoint_total += len(neighbors)
            adj_list.append(neighbors)
        self.adj_list = adj_list
        self._edge_count = endpoint_total // 2

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    @property
    def num_nodes(self) -> int:
        return self.k + len(self.vregs)

    @property
    def num_vreg_nodes(self) -> int:
        return len(self.vregs)

    def is_precolored(self, node: int) -> bool:
        return node < self.k

    def vreg_for(self, node: int):
        return self.vregs[node - self.k]

    def interferes(self, a: int, b: int) -> bool:
        return bool((self.adj_mask[a] >> b) & 1)

    def neighbors(self, node: int) -> list:
        if self.adj_list is None:
            raise AllocationError("freeze() the graph before neighbor walks")
        return self.adj_list[node]

    def degree(self, node: int) -> int:
        return len(self.neighbors(node))

    def edge_count(self) -> int:
        """Number of undirected edges (including precolored clique).

        Cached: ``freeze()`` computes it as a by-product and ``add_edge``
        invalidates it, so repeated stats queries cost O(1).
        """
        if self._edge_count is None:
            total = sum(popcount(mask) for mask in self.adj_mask)
            self._edge_count = total // 2
        return self._edge_count

    def __repr__(self) -> str:
        return (
            f"InterferenceGraph({self.rclass}, k={self.k}, "
            f"{self.num_vreg_nodes} vregs, {self.edge_count()} edges)"
        )


def _class_masks(function: Function, rclasses) -> dict:
    masks = {rclass: 0 for rclass in rclasses}
    for vreg in function.vregs:
        if vreg.rclass in masks:
            masks[vreg.rclass] |= 1 << vreg.id
    return masks


def _vregs_by_id(function: Function, liveness: Liveness) -> dict:
    by_id = getattr(liveness, "vreg_by_id", None)
    if by_id is None or len(by_id) != len(function.vregs):
        by_id = {v.id: v for v in function.vregs}
    return by_id


def build_interference_graphs(
    function: Function,
    target: Target,
    liveness: Liveness | None = None,
    rclasses=DEFAULT_CLASSES,
) -> dict:
    """Build the interference graphs of every register class at once.

    One backward walk over the instructions serves all classes: the live
    set is a single bitset over the whole register file, and every
    definition point filters it through the class mask of the defined
    register.  Returns ``{rclass: InterferenceGraph}``.
    """
    liveness = liveness or Liveness(function, CFG(function))
    by_id = _vregs_by_id(function, liveness)
    class_mask = _class_masks(function, rclasses)
    graphs = {
        rclass: InterferenceGraph(rclass, target.regs(rclass))
        for rclass in rclasses
    }
    caller_saved_mask = {}
    for rclass in rclasses:
        mask = 0
        for color in target.caller_saved(rclass):
            mask |= 1 << color
        caller_saved_mask[rclass] = mask

    # Make sure every occurring vreg has a node even if it never interferes.
    # Parameters are all defined simultaneously by the (implicit) prologue,
    # so they mutually interfere — without this, two arguments could share
    # a register and the later write would destroy the earlier value.
    entry_live = liveness.live_in[function.entry.label]
    for rclass, graph in graphs.items():
        class_params = [p for p in function.params if p.rclass == rclass]
        for param in class_params:
            graph.ensure_node(param)
        for index, first in enumerate(class_params):
            for second in class_params[index + 1 :]:
                graph.add_edge(graph.node_of[first], graph.node_of[second])
        # Anything else live at function entry (only possible for parameters
        # in verified IR, but kept general) interferes with every parameter.
        for vid in iter_bits(entry_live & class_mask[rclass]):
            node = graph.ensure_node(by_id[vid])
            for param in class_params:
                graph.add_edge(node, graph.node_of[param])
    for _block, _index, instr in function.instructions():
        for vreg in instr.defs:
            graph = graphs.get(vreg.rclass)
            if graph is not None:
                graph.ensure_node(vreg)
        for vreg in instr.uses:
            graph = graphs.get(vreg.rclass)
            if graph is not None:
                graph.ensure_node(vreg)

    # The single backward walk.  The live set is one bitset over every
    # virtual register, so each definition point records its interference
    # as a *single OR* into a per-register row in id space — no per-bit
    # work at all.  Id-space rows merge the (heavily duplicated) live sets
    # of a register's many definition points for free; they are translated
    # into node space and symmetrised afterwards, in O(edges).
    raw: list = [0] * len(function.vregs)  # vreg id -> interfering-id mask
    across_calls = 0  # ids ever live across a call (all classes)
    for block in function.blocks:
        live = liveness.live_out[block.label]
        for instr in reversed(block.instrs):
            defs_mask = 0
            for d in instr.defs:
                defs_mask |= 1 << d.id

            if instr.is_call:
                # Values live across the call cannot sit in caller-saved
                # registers.  (The call's own result is defined after the
                # clobber point, so it is exempt.)
                across_calls |= live & ~defs_mask

            interfering = live
            if instr.is_copy:
                interfering = live & ~(1 << instr.uses[0].id)
            for d in instr.defs:
                raw[d.id] |= interfering

            live = live & ~defs_mask
            for u in instr.uses:
                live |= 1 << u.id

    for rclass, graph in graphs.items():
        cmask = class_mask[rclass]
        adj = graph.adj_mask
        node_of_id = {vreg.id: node for vreg, node in graph.node_of.items()}
        # Caller-saved clobbers: one accumulated mask serves every call
        # site, since the clobbered color set is the same at each.
        clobber = caller_saved_mask[rclass]
        if clobber:
            for vid in iter_bits(across_calls & cmask):
                adj[node_of_id[vid]] |= clobber
        # Translate each register's id-space row into its node-space row.
        for vid, node in node_of_id.items():
            row_ids = raw[vid] & cmask & ~(1 << vid)
            if row_ids:
                row = 0
                for other in iter_bits(row_ids):
                    row |= 1 << node_of_id[other]
                adj[node] |= row
        # Symmetrise: def-point rows are directed (defined -> live), and
        # the clobber rows only set the virtual side.
        for node in range(graph.num_nodes):
            bit = 1 << node
            for neighbor in iter_bits(adj[node]):
                adj[neighbor] |= bit
        graph._edge_count = None
        graph.freeze()
    return graphs


def build_interference_graph(
    function: Function,
    rclass: RClass,
    target: Target,
    liveness: Liveness | None = None,
) -> InterferenceGraph:
    """Build the interference graph of one register class.

    ``liveness`` may be passed in to share a computation between the two
    classes of one build phase; callers that need both classes should use
    :func:`build_interference_graphs`, which walks the instructions once
    for all of them.
    """
    return build_interference_graphs(
        function, target, liveness, rclasses=(rclass,)
    )[rclass]
