"""Persistent warm worker pool: the parallel driver's transport layer.

PR 1's parallel driver created a process pool inside every
``allocate_module`` call and pickled whole :class:`~repro.ir.function
.Function` objects both ways.  On the benchmark workloads the spawn plus
the pickling cost more than the coloring itself — BENCH_PR1/PR5 both
show ``jobs=2`` ~1.7x *slower* than serial.  This module replaces that
per-call machinery with three pieces:

* **a persistent pool** (:class:`WorkerPool`, obtained via
  :func:`get_pool`) that is created lazily on first use, warms its
  workers by importing the allocator stack once
  (:func:`_warm_worker`), and is reused by every subsequent
  ``allocate_module`` call in the process.  Pools are torn down at
  interpreter exit (``atexit``), explicitly via :func:`shutdown_pools`,
  or per-instance via the context-manager protocol.  A pool whose worker
  wedged past its timeout is **restarted** (terminated and lazily
  respawned), never joined — a hung allocation cannot outlive the call
  that abandoned it.

* **a compact wire transport** — requests carry functions as
  :mod:`repro.ir.wire` text (~4.3x smaller than pickle on the registry
  suite, and faster to encode) and responses carry only what the parent
  needs to rebuild an :class:`~repro.regalloc.driver.AllocationResult`:
  the allocated function's wire text, the assignment keyed by stable
  vreg ids, the stats object, and the worker's tracer snapshot.  Whole
  ``Function`` objects never cross the boundary.  The one exception is
  ``paranoia != "off"``, where the result must keep its final-pass
  interference graphs for :func:`repro.regalloc.invariants
  .recheck_assignment`; graphs reference the worker's vreg objects, and
  vreg equality is identity, so the function, assignment, graphs, and
  stats ship as one pickle blob whose internal identities stay
  consistent.

* **size-aware batching** (:func:`plan_batches`) — functions are sorted
  largest-first (by wire size, a faithful proxy for allocation work)
  and distributed over batches with a greedy longest-processing-time
  schedule, so one straggler cannot serialize the tail and small
  functions amortize dispatch overhead by travelling together.  The
  plan always produces at least ``min(workers, len(items))`` batches,
  so per-function timeout and crash attribution stay sharp on the
  fault-injection programs.

On top of the transport sits a **content-addressed response cache**
(:class:`ResponseCache`): the request wire text *is* a canonical digest
of the function, so ``(wire text, target, method, kwargs)`` keys a
finished allocation response.  A hit replays the worker's response
without dispatching — decoding materializes a fresh object graph each
time, so replays are indistinguishable from a live worker round trip
and remain bit-identical to serial allocation.  The cache is the first
concrete step toward the ROADMAP's allocation-as-a-service direction,
and it only ever sees hashable, deterministic inputs: string method
names (never stateful strategy objects) with tracing disabled.  The
serial path is deliberately left uncached — it is the reference
implementation every parallel result is compared against.

Fault semantics from PR 2 are preserved end to end: workers contain
per-function exceptions inside a batch (one crash cannot poison its
batch-mates or the pool), timeouts are charged per function and
terminate the wedged pool, and the driver's in-process retry and
:class:`~repro.regalloc.driver.FailurePolicy` handling sit unchanged
above this layer.
"""

from __future__ import annotations

import atexit
import os
import pickle
import signal
import threading
from collections import OrderedDict

from repro.ir.wire import decode_function, encode_function

__all__ = [
    "WorkerPool",
    "ResponseCache",
    "RESPONSE_CACHE",
    "get_pool",
    "shutdown_pools",
    "active_pools",
    "resolve_jobs",
    "plan_batches",
    "encode_request",
    "cache_key",
    "materialize_response",
    "restart_pools",
    "install_signal_teardown",
]


# ----------------------------------------------------------------------
# Job-count resolution
# ----------------------------------------------------------------------


def resolve_jobs(jobs: int, eligible: int) -> int:
    """The worker count for ``jobs`` over ``eligible`` functions.

    ``jobs == 0`` auto-detects one worker per CPU — except on a 1-core
    box, where it answers 1 (serial): BENCH_PR6's honest
    ``alloc_registry_all_jobs2_nocache`` row shows pooled dispatch
    without real cores ~1.25x *slower* than serial, so auto-detect must
    never pick the pool there.  An explicit ``jobs >= 2`` still forces
    pooled dispatch (parity tests and timeout enforcement rely on it).
    Either way the count is clamped to the number of eligible functions
    — a module with two functions never spawns eight workers that would
    sit idle (the pre-PR-6 auto-detect path skipped the clamp).
    """
    if jobs < 0:
        from repro.errors import AllocationError

        raise AllocationError(f"jobs must be >= 0, got {jobs}")
    if jobs == 0:
        cpus = os.cpu_count() or 1
        if cpus <= 1:
            return 1
        jobs = cpus
    return max(1, min(jobs, eligible))


# ----------------------------------------------------------------------
# Request encoding and batching
# ----------------------------------------------------------------------


def encode_request(function) -> str:
    """The wire text shipped to a worker for one function."""
    return encode_function(function)


def plan_batches(items: list, workers: int, weight=len) -> list:
    """Partition ``items`` into dispatch batches, largest first.

    Greedy LPT schedule: sort by descending ``weight`` (ties broken by
    original order, so the plan is deterministic), then place each item
    into the currently lightest batch.  At least ``min(workers,
    len(items))`` batches come back — never fewer, so every worker gets
    work and single-function batches keep timeout attribution exact on
    small modules — and batches are returned heaviest first, matching
    the order they should be dispatched in.
    """
    if not items:
        return []
    count = min(len(items), max(1, workers))
    batches = [[] for _ in range(count)]
    loads = [0] * count
    decorated = sorted(
        enumerate(items), key=lambda pair: (-weight(pair[1]), pair[0])
    )
    for _original_index, item in decorated:
        lightest = loads.index(min(loads))
        batches[lightest].append(item)
        loads[lightest] += weight(item)
    order = sorted(range(count), key=lambda b: -loads[b])
    return [batches[b] for b in order if batches[b]]


# ----------------------------------------------------------------------
# Worker side
# ----------------------------------------------------------------------


def _bind_to_parent_death(poll_interval: float = 0.5) -> None:
    """SIGKILL this worker once its parent *process* dies.  The normal
    teardown paths — atexit, ``install_signal_teardown`` — cannot run
    when the parent is SIGKILLed; this is the floor under the
    durability contract that no worker outlives its parent.

    Deliberately NOT ``PR_SET_PDEATHSIG``: that fires when the parent
    *thread* that forked the worker exits, so a pool created from an
    executor thread (the allocation service does exactly this) would
    have its idle workers SIGKILLed at executor shutdown while they
    hold the task-queue lock — deadlocking the pool's own terminate.
    A ppid watch only trips on real parent death (re-parenting)."""
    parent = os.getppid()
    if parent <= 1:  # already orphaned before we could watch
        os.kill(os.getpid(), signal.SIGKILL)

    def watch() -> None:
        import time

        while True:
            if os.getppid() != parent:
                os.kill(os.getpid(), signal.SIGKILL)
            time.sleep(poll_interval)

    threading.Thread(target=watch, daemon=True,
                     name="parent-death-watch").start()


def _warm_worker() -> None:
    """Pool initializer: pay every allocator import once, at warm-up,
    instead of on the first dispatched function."""
    _bind_to_parent_death()
    import repro.regalloc.driver  # noqa: F401
    import repro.regalloc.briggs  # noqa: F401
    import repro.regalloc.chaitin  # noqa: F401
    import repro.analysis.liveness  # noqa: F401


def _allocate_one(wire_text, target, method, kwargs, trace):
    """Allocate one wire-encoded function; returns a response tuple.

    * ``("wire", text, {vreg_id: color}, stats, snapshot)`` — the normal
      transport: the allocated function re-encoded, the assignment keyed
      by stable vreg ids.
    * ``("pickle", blob, snapshot)`` — the ``paranoia`` transport: the
      retained interference graphs share vreg identities with the
      function and assignment, so all four travel in one blob.

    ``trace`` is falsy (no tracing), ``True``, or a request trace-id
    string: the service threads its per-request id through dispatch so
    worker-lane spans in the merged trace carry the id that caused them.
    """
    from repro.observability.trace import Tracer
    from repro.regalloc.driver import allocate_function

    function = decode_function(wire_text)
    tracer = None
    if trace:
        tracer = Tracer()
        if isinstance(trace, str):
            tracer.trace_id = trace
            tracer.instant("trace-id", cat="meta", trace_id=trace)
    result = allocate_function(function, target, method, tracer=tracer,
                               **kwargs)
    snapshot = tracer.snapshot() if trace else None
    if result.graphs is not None:
        blob = pickle.dumps(
            (result.function, result.assignment, result.stats, result.graphs)
        )
        return ("pickle", blob, snapshot)
    colors = {vreg.id: color for vreg, color in result.assignment.items()}
    return ("wire", encode_function(result.function), colors, result.stats,
            snapshot)


def _allocate_batch(wire_texts, target, method, kwargs, trace):
    """Pool entry point: allocate a batch, containing failures per
    function — one crash yields an ``("error", exc)`` entry instead of
    poisoning its batch-mates or killing the worker."""
    responses = []
    for wire_text in wire_texts:
        try:
            responses.append(
                _allocate_one(wire_text, target, method, kwargs, trace)
            )
        except Exception as error:  # noqa: BLE001 — shipped to the parent
            try:
                pickle.dumps(error)
            except Exception:
                error = RuntimeError(repr(error))
            responses.append(("error", error))
    return responses


# ----------------------------------------------------------------------
# Parent side: response materialization
# ----------------------------------------------------------------------


def materialize_response(response, target, method_name):
    """Rebuild ``(AllocationResult, trace_snapshot)`` from a worker
    response.  Decoding creates a fresh object graph every call, so the
    same (possibly cached) response can be materialized repeatedly."""
    from repro.regalloc.driver import AllocationResult

    kind = response[0]
    if kind == "pickle":
        _kind, blob, snapshot = response
        function, assignment, stats, graphs = pickle.loads(blob)
        return (
            AllocationResult(function, target, method_name, assignment,
                             stats, graphs=graphs),
            snapshot,
        )
    _kind, wire_text, colors, stats, snapshot = response
    function = decode_function(wire_text)
    by_id = {vreg.id: vreg for vreg in function.vregs}
    assignment = {by_id[vid]: color for vid, color in colors.items()}
    return (
        AllocationResult(function, target, method_name, assignment, stats),
        snapshot,
    )


def encode_result_response(result):
    """The response tuple an in-process :class:`AllocationResult` would
    have produced had it come from a worker — the same transport
    ``_allocate_one`` emits, so the durability journal can record
    serial-path completions and replay them through
    :func:`materialize_response` bit-identically."""
    if result.graphs is not None:
        blob = pickle.dumps(
            (result.function, result.assignment, result.stats, result.graphs)
        )
        return ("pickle", blob, None)
    colors = {vreg.id: color for vreg, color in result.assignment.items()}
    return ("wire", encode_function(result.function), colors, result.stats,
            None)


# ----------------------------------------------------------------------
# Content-addressed response cache
# ----------------------------------------------------------------------


def _target_key(target) -> tuple:
    return (
        target.name,
        target.int_regs,
        target.float_regs,
        tuple(sorted(target.int_caller_saved)),
        tuple(sorted(target.float_caller_saved)),
    )


def cache_key(wire_text, target, method, kwargs):
    """The content address of one allocation request, or ``None`` when
    the request is not cacheable (a strategy *object* may be stateful —
    fault injectors deliberately are — so only string method names
    qualify)."""
    if not isinstance(method, str):
        return None
    return (
        wire_text,
        _target_key(target),
        method,
        tuple(sorted(kwargs.items())),
    )


class ResponseCache:
    """A bounded LRU over worker responses, keyed by content address,
    with an optional checksummed disk tier behind it.

    Responses are stored as the re-pickled tuple, not live objects:
    replaying a hit unpickles a fresh stats object (and the wire text
    decodes to a fresh function), so no two
    :class:`~repro.regalloc.driver.AllocationResult` instances ever
    share mutable state through the cache.

    With a disk tier attached (:meth:`attach_disk`, a
    :class:`repro.regalloc.diskcache.DiskCache`), memory misses fall
    through to disk and every store writes through — warm starts then
    survive process restarts.  The disk tier verifies a checksum on
    every read and quarantines damaged entries, so a corrupt or torn
    file costs a recompute, never a wrong replay.  All tiers are
    lock-protected: the allocation service dispatches from multiple
    threads onto one process-global cache.
    """

    def __init__(self, limit: int = 256, disk=None):
        self.limit = limit
        self.hits = 0
        self.misses = 0
        self.disk_hits = 0
        self.disk = disk
        self._entries: OrderedDict = OrderedDict()
        self._lock = threading.Lock()

    def __len__(self) -> int:
        return len(self._entries)

    def attach_disk(self, root, **kwargs):
        """Attach (and return) a disk tier rooted at ``root``."""
        from repro.regalloc.diskcache import DiskCache

        with self._lock:
            self.disk = DiskCache(root, **kwargs)
            return self.disk

    def detach_disk(self) -> None:
        with self._lock:
            self.disk = None

    def get(self, key):
        if key is None:
            return None
        with self._lock:
            blob = self._entries.get(key)
            if blob is not None:
                self._entries.move_to_end(key)
                self.hits += 1
                return pickle.loads(blob)
            self.misses += 1
            disk = self.disk
        if disk is None:
            return None
        blob = disk.get(key)
        if blob is None:
            return None
        self.disk_hits += 1
        with self._lock:
            self._store(key, blob)
        return pickle.loads(blob)

    def put(self, key, response) -> None:
        if key is None:
            return
        blob = pickle.dumps(response)
        with self._lock:
            self._store(key, blob)
            disk = self.disk
        if disk is not None:
            disk.put(key, blob)

    def _store(self, key, blob) -> None:
        self._entries[key] = blob
        self._entries.move_to_end(key)
        while len(self._entries) > self.limit:
            self._entries.popitem(last=False)

    def drop_memory(self) -> None:
        """Empty only the memory tier, keeping counters and any disk
        tier — the next lookup replays the warm-start path through the
        verified disk read.  The chaos harness uses this to simulate a
        restarted process facing a damaged cache directory."""
        with self._lock:
            self._entries.clear()

    def clear(self) -> None:
        """Empty the memory tier, reset counters, and detach any disk
        tier (files on disk are left alone — reattach to reuse them)."""
        with self._lock:
            self._entries.clear()
            self.hits = 0
            self.misses = 0
            self.disk_hits = 0
            self.disk = None

    def stats(self) -> dict:
        stats = {
            "entries": len(self._entries),
            "limit": self.limit,
            "hits": self.hits,
            "misses": self.misses,
        }
        if self.disk is not None:
            stats["disk_hits"] = self.disk_hits
            stats["disk"] = self.disk.stats()
        return stats


#: The process-wide response cache shared by every pool dispatch.
RESPONSE_CACHE = ResponseCache()


# ----------------------------------------------------------------------
# The persistent pool
# ----------------------------------------------------------------------


class WorkerPool:
    """A lazily-created, warm-once ``multiprocessing.Pool`` wrapper.

    The underlying pool is spawned on the first :meth:`submit` and then
    reused for every later dispatch — including across separate
    ``allocate_module`` calls.  :meth:`restart` terminates a pool whose
    worker wedged (the replacement is spawned lazily on next use);
    :meth:`shutdown` ends its life for good.  Usable as a context
    manager for scoped teardown in tests.
    """

    def __init__(self, processes: int):
        self.processes = processes
        self._pool = None
        self.dispatches = 0
        self.batches = 0
        self.warm_starts = 0
        self.restarts = 0

    # -- lifecycle -----------------------------------------------------

    @property
    def warm(self) -> bool:
        """True once the underlying process pool exists."""
        return self._pool is not None

    def _ensure(self):
        if self._pool is None:
            import multiprocessing

            self._pool = multiprocessing.get_context().Pool(
                processes=self.processes, initializer=_warm_worker
            )
            self.warm_starts += 1
        return self._pool

    def worker_pids(self) -> list:
        """Pids of the live worker processes (empty when cold)."""
        if self._pool is None:
            return []
        return [proc.pid for proc in self._pool._pool]

    def restart(self) -> None:
        """Terminate the pool (killing any wedged worker); the next
        submit spawns a fresh one."""
        if self._pool is not None:
            self._pool.terminate()
            self._pool.join()
            self._pool = None
            self.restarts += 1

    def shutdown(self) -> None:
        """Graceful teardown: drain, close, join."""
        if self._pool is not None:
            self._pool.close()
            self._pool.join()
            self._pool = None

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.shutdown()

    # -- dispatch ------------------------------------------------------

    def submit(self, wire_texts, target, method, kwargs, trace):
        """Dispatch one batch; returns the ``AsyncResult`` whose value
        is the worker's list of response tuples.  ``trace`` may be a
        bool or a request trace-id string (see :func:`_allocate_one`)."""
        pool = self._ensure()
        self.batches += 1
        self.dispatches += len(wire_texts)
        return pool.apply_async(
            _allocate_batch, (wire_texts, target, method, kwargs, trace)
        )

    def submit_call(self, func, args):
        """Dispatch one plain ``func(*args)`` call; returns the
        ``AsyncResult``.  The generic sibling of :meth:`submit` for work
        that is not a function-allocation batch — the conflict-repair
        engine ships coloring chunks through this (``func`` must be a
        picklable module-level callable)."""
        pool = self._ensure()
        self.batches += 1
        self.dispatches += 1
        return pool.apply_async(func, args)

    def stats(self) -> dict:
        return {
            "processes": self.processes,
            "warm": self.warm,
            "dispatches": self.dispatches,
            "batches": self.batches,
            "warm_starts": self.warm_starts,
            "restarts": self.restarts,
        }

    def __repr__(self) -> str:
        state = "warm" if self.warm else "cold"
        return f"WorkerPool({self.processes} processes, {state})"


_POOLS: dict = {}
_ATEXIT_REGISTERED = False


def get_pool(processes: int) -> WorkerPool:
    """The shared persistent pool with ``processes`` workers.

    One pool per worker count, created on first request and reused by
    every later ``allocate_module`` call; all registered pools are torn
    down at interpreter exit.
    """
    global _ATEXIT_REGISTERED
    pool = _POOLS.get(processes)
    if pool is None:
        pool = _POOLS[processes] = WorkerPool(processes)
        if not _ATEXIT_REGISTERED:
            atexit.register(shutdown_pools)
            _ATEXIT_REGISTERED = True
    return pool


def active_pools() -> list:
    """Registered pools, warm or cold (introspection for tests/stats)."""
    return list(_POOLS.values())


def shutdown_pools() -> None:
    """Shut down and forget every registered pool (atexit hook; also
    callable explicitly, e.g. between test groups)."""
    while _POOLS:
        _processes, pool = _POOLS.popitem()
        pool.shutdown()


def restart_pools() -> None:
    """Terminate every warm pool's workers; replacements spawn lazily on
    next use.  The circuit breaker's half-open hook — a trial request
    after repeated failures should run on fresh processes, not on
    whatever state just failed."""
    for pool in _POOLS.values():
        pool.restart()


def install_signal_teardown(signals=None) -> dict:
    """Make SIGTERM/SIGINT tear the pools down before the process dies.

    ``atexit`` covers normal interpreter exit, but a process killed by a
    signal whose default disposition is "terminate" (SIGTERM above all —
    what every supervisor sends first) never reaches ``atexit``, and its
    pool workers are orphaned.  This installs handlers that run
    :func:`shutdown_pools` and then **re-deliver the signal with its
    previous disposition**: a previously-installed handler is chained, a
    default disposition is restored and re-raised (so the exit status
    still says "killed by SIGTERM"), and SIGINT keeps raising
    ``KeyboardInterrupt`` through Python's default handler.

    Long-lived entry points (``repro serve`` / ``repro chaos``) prefer
    their event loop's graceful drain handlers; this is the
    belt-and-suspenders floor for every other caller.  Returns the
    previous handlers ``{signum: handler}`` so a test can restore them.
    """
    import signal as signal_mod

    if signals is None:
        signals = (signal_mod.SIGTERM, signal_mod.SIGINT)
    previous: dict = {}

    def teardown_handler(signum, frame):
        shutdown_pools()
        prior = previous.get(signum)
        if callable(prior):
            prior(signum, frame)
        else:
            # SIG_DFL (or SIG_IGN treated the same): restore and
            # re-deliver so the kernel applies the real disposition and
            # the exit status is the conventional 128+signum.
            signal_mod.signal(signum, signal_mod.SIG_DFL)
            os.kill(os.getpid(), signum)

    for signum in signals:
        previous[signum] = signal_mod.signal(signum, teardown_handler)
    return previous
