"""Spill-code insertion.

Spilling a live range gives it a frame slot and rewrites every occurrence
(paper §2.1): "the value is stored to memory after each definition and
restored before each use".  Each occurrence gets a fresh *spill temporary*
— a tiny live range spanning one instruction — marked ``is_spill_temp`` so
the cost model makes it unspillable.  This is precisely why the allocation
loop converges: "spilling a live range does not entirely remove it; it
simply divides that live range into several shorter live ranges" (§3.3).

A spilled *parameter* additionally gets a store at function entry, since
its value arrives in a register.
"""

from __future__ import annotations

from repro.ir.function import Function
from repro.ir.instructions import Instr
from repro.ir.values import RClass


def _spill_op(vreg) -> str:
    return "spill" if vreg.rclass == RClass.INT else "fspill"


def _reload_op(vreg) -> str:
    return "reload" if vreg.rclass == RClass.INT else "freload"


def _rematerializable(function: Function, spilled: list) -> dict:
    """Spilled ranges whose every definition loads the same constant.

    Chaitin's refinement (referenced by the paper's footnote 3): such a
    value needs no frame slot — each use just reloads the immediate.
    Returns vreg -> (opcode, immediate).
    """
    candidates: dict = {}
    blocked = set(function.params)
    for _block, _index, instr in function.instructions():
        for d in instr.defs:
            if d in blocked:
                continue
            if instr.op in ("li", "lf"):
                seen = candidates.get(d)
                if seen is None:
                    candidates[d] = (instr.op, instr.imm)
                elif seen != (instr.op, instr.imm):
                    blocked.add(d)
            else:
                blocked.add(d)
    return {
        vreg: candidates[vreg]
        for vreg in spilled
        if vreg in candidates and vreg not in blocked
    }


def insert_spill_code(
    function: Function, spilled: list, rematerialize: bool = False
) -> int:
    """Spill every live range in ``spilled``; returns instructions added.

    After this runs the spilled virtual registers no longer occur in the
    instruction stream (except spilled parameters, which keep exactly one
    occurrence: the entry store of the incoming value).

    With ``rematerialize=True``, constant-valued ranges are recomputed at
    each use (an ``li``/``lf`` instead of a reload) and their defining
    loads are deleted — no frame slot, no stores.
    """
    if not spilled:
        return 0
    remat = _rematerializable(function, spilled) if rematerialize else {}
    slots = {
        vreg: function.new_spill_slot()
        for vreg in spilled
        if vreg not in remat
    }
    spilled_set = set(slots)
    added = 0

    if remat:
        added += _apply_rematerialization(function, remat)

    for block in function.blocks:
        rewritten: list = []
        for instr in block.instrs:
            # Restore before each use.
            use_temps: dict = {}
            for u in instr.uses:
                if u in spilled_set and u not in use_temps:
                    temp = function.new_vreg(u.rclass, u.name, is_spill_temp=True)
                    rewritten.append(
                        Instr(_reload_op(u), [temp], imm=slots[u])
                    )
                    added += 1
                    use_temps[u] = temp
            if use_temps:
                instr.replace_uses(use_temps)
            rewritten.append(instr)
            # Store after each definition.
            def_temps: dict = {}
            for d in instr.defs:
                if d in spilled_set and d not in def_temps:
                    temp = function.new_vreg(d.rclass, d.name, is_spill_temp=True)
                    def_temps[d] = temp
            if def_temps:
                instr.replace_defs(def_temps)
                for original, temp in def_temps.items():
                    rewritten.append(
                        Instr(_spill_op(original), uses=[temp], imm=slots[original])
                    )
                    added += 1
        block.instrs = rewritten

    # Parameters never rematerialize, so the entry-store logic below only
    # deals with slot-based spills.
    # Spilled parameters: store the incoming value at entry.  The live
    # range left behind (argument register -> entry store) is already
    # minimal, so mark it unspillable — without this, a function with more
    # arguments than registers would re-spill the same parameter forever
    # instead of failing with a clear diagnostic.
    entry = function.entry
    position = 0
    for param in function.params:
        if param in spilled_set:
            entry.instrs.insert(
                position,
                Instr(_spill_op(param), uses=[param], imm=slots[param]),
            )
            param.is_spill_temp = True
            position += 1
            added += 1
    return added


def _apply_rematerialization(function: Function, remat: dict) -> int:
    """Rewrite uses of rematerializable ranges to fresh constant loads and
    delete their (now-dead) defining instructions."""
    added = 0
    for block in function.blocks:
        rewritten: list = []
        for instr in block.instrs:
            if (
                instr.op in ("li", "lf")
                and instr.defs
                and instr.defs[0] in remat
            ):
                continue  # the definition is recomputed at each use
            use_temps: dict = {}
            for u in instr.uses:
                if u in remat and u not in use_temps:
                    op, imm = remat[u]
                    temp = function.new_vreg(u.rclass, u.name, is_spill_temp=True)
                    rewritten.append(Instr(op, [temp], imm=imm))
                    added += 1
                    use_temps[u] = temp
            if use_temps:
                instr.replace_uses(use_temps)
            rewritten.append(instr)
        block.instrs = rewritten
    return added
