"""Exports of allocation artifacts: DOT graphs and structured dicts.

``to_dot`` renders an :class:`~repro.regalloc.interference.InterferenceGraph`
as an undirected DOT graph: precolored nodes are boxes, live ranges are
ellipses labelled with their name/degree/spill cost, and — when a coloring
is supplied — nodes are filled from a qualitative palette so a proper
coloring is visible at a glance.

``allocation_to_dict`` dumps one :class:`~repro.regalloc.driver
.AllocationResult` for machine consumers (``repro allocate --json``, the
metrics documents of :mod:`repro.observability.export`).  The statistics
come from :meth:`repro.regalloc.stats.AllocationStats.to_dict` — the
single schema definition — so every ``PassStats`` field (``reused``,
``webs_split``, ...) appears in exported reports without a second,
drift-prone field list here.
"""

from __future__ import annotations

from repro.regalloc.interference import InterferenceGraph


def allocation_to_dict(result) -> dict:
    """Structured dump of one function's allocation outcome."""
    return {
        "function": result.function.name,
        "method": result.method,
        "target": result.target.name,
        "assignment": {
            vreg.pretty(): color
            for vreg, color in sorted(
                result.assignment.items(), key=lambda item: item[0].id
            )
        },
        "stats": result.stats.to_dict(),
    }

#: A small qualitative palette, cycled when k exceeds its size.
_PALETTE = [
    "#66c2a5",
    "#fc8d62",
    "#8da0cb",
    "#e78ac3",
    "#a6d854",
    "#ffd92f",
    "#e5c494",
    "#b3b3b3",
]


def _fill(color_index: int) -> str:
    return _PALETTE[color_index % len(_PALETTE)]


def to_dot(
    graph: InterferenceGraph,
    costs=None,
    colors: dict | None = None,
    spilled=None,
    include_precolored: bool = False,
    name: str = "interference",
) -> str:
    """Render ``graph`` as DOT text.

    ``colors`` maps VReg -> color index; ``spilled`` is an iterable of
    spilled VRegs drawn in red.  Precolored (physical-register) nodes are
    omitted by default — with them, every picture contains the k-clique.
    """
    spilled_set = set(spilled or [])
    lines = [f"graph {name} {{", "  node [style=filled];"]

    def node_id(node: int) -> str:
        if graph.is_precolored(node):
            return f"r{node}"
        return f"v{graph.vreg_for(node).id}"

    if include_precolored:
        for node in range(graph.k):
            lines.append(
                f'  {node_id(node)} [shape=box, label="r{node}", '
                f'fillcolor="{_fill(node)}"];'
            )
    for node in range(graph.k, graph.num_nodes):
        vreg = graph.vreg_for(node)
        label_parts = [vreg.pretty(), f"deg {graph.degree(node)}"]
        if costs is not None:
            cost = costs.cost(vreg)
            label_parts.append(
                "cost inf" if cost == float("inf") else f"cost {cost:.0f}"
            )
        label = "\\n".join(label_parts)
        attributes = [f'label="{label}"']
        if vreg in spilled_set:
            attributes.append('fillcolor="#ff6b6b"')
        elif colors is not None and vreg in colors:
            attributes.append(f'fillcolor="{_fill(colors[vreg])}"')
        else:
            attributes.append('fillcolor="white"')
        lines.append(f"  {node_id(node)} [{', '.join(attributes)}];")

    for node in range(graph.num_nodes):
        if not include_precolored and graph.is_precolored(node):
            continue
        for neighbor in graph.neighbors(node):
            if neighbor <= node:
                continue
            if not include_precolored and graph.is_precolored(neighbor):
                continue
            lines.append(f"  {node_id(node)} -- {node_id(neighbor)};")
    lines.append("}")
    return "\n".join(lines) + "\n"
