"""Aggressive copy coalescing (Chaitin's subsumption).

The build phase "repeatedly build[s] the graph and coalesc[es] registers"
(paper §3.3): any ``mov d, s`` whose operands do not interfere is removed
and the two live ranges merged.  Our front end emits a copy for every
source-level assignment, so coalescing is what turns those assignments
back into register renamings.

Each *round* builds the interference graphs once and then merges every
coalescable copy found, maintaining merged adjacency with a union-find
(testing group-against-group interference via bit masks), then rewrites
the IR.  Rounds repeat until a fixed point — merging two ranges can make
another copy coalescable or, conversely, make it interfere, which is why
the graph must be rebuilt between rounds.

Restrictions:

* two parameters are never merged (each carries a distinct incoming
  value);
* spill temporaries are never merged (they must stay short-lived and
  unspillable for the allocation loop to terminate).

Beyond the paper, ``strategy="conservative"`` implements the Briggs-style
*conservative* test the authors later published (Briggs, Cooper & Torczon
1994): a copy is merged only when the combined node would have fewer than
k neighbors of significant degree (>= k), so coalescing can never turn a
colorable graph into an uncolorable one.  Kept as an ablation knob; the
1989 paper's build phase is the aggressive variant.
"""

from __future__ import annotations

from repro.analysis.bitset import iter_bits, popcount
from repro.analysis.cfg import CFG
from repro.analysis.liveness import Liveness
from repro.ir.function import Function
from repro.ir.values import RClass
from repro.machine.target import Target
from repro.regalloc.interference import build_interference_graphs


def _conservative_ok(graph, state, k, root_a, root_b, find) -> bool:
    """Briggs's test on the merged group: fewer than k significant-degree
    neighbors.  Degrees are taken from the per-round graph (groups merged
    earlier this round count through their union-find root's adjacency)."""
    combined_members = state["members"][root_a] | state["members"][root_b]
    neighbor_mask = (state["adj"][root_a] | state["adj"][root_b]) & ~combined_members
    significant = 0
    seen_roots = set()
    for node in iter_bits(neighbor_mask):
        if node < k:
            root = node  # precolored: always significant
            degree = k  # a precolored node's degree is effectively >= k
        else:
            root = find(state["parent"], node)
            if root in seen_roots:
                continue
            degree = popcount(state["adj"][root] & ~state["members"][root])
        if root in seen_roots:
            continue
        seen_roots.add(root)
        if degree >= k:
            significant += 1
            if significant >= k:
                return False
    return True


def _coalesce_round(function: Function, target: Target,
                    strategy: str = "aggressive") -> int:
    """One build-and-merge round; returns the number of copies removed."""
    liveness = Liveness(function, CFG(function))
    graphs = build_interference_graphs(
        function, target, liveness, rclasses=(RClass.INT, RClass.FLOAT)
    )

    # Union-find over graph nodes, per class, with merged adjacency masks.
    state = {}
    for rclass, graph in graphs.items():
        state[rclass] = {
            "parent": list(range(graph.num_nodes)),
            "adj": list(graph.adj_mask),
            "members": [1 << n for n in range(graph.num_nodes)],
        }

    def find(parent: list, x: int) -> int:
        root = x
        while parent[root] != root:
            root = parent[root]
        while parent[x] != root:
            parent[x], x = root, parent[x]
        return root

    params = set(function.params)
    merged_pairs: list = []

    for _block, _index, instr in function.instructions():
        if not instr.is_copy:
            continue
        dst, src = instr.defs[0], instr.uses[0]
        if dst is src:
            continue
        if dst.is_spill_temp or src.is_spill_temp:
            continue
        if dst in params and src in params:
            continue
        graph = graphs[dst.rclass]
        s = state[dst.rclass]
        a = find(s["parent"], graph.node_of[dst])
        b = find(s["parent"], graph.node_of[src])
        if a == b:
            merged_pairs.append((dst, src))
            continue
        if s["adj"][a] & s["members"][b]:
            continue  # the (merged) ranges interfere; cannot coalesce
        if strategy == "conservative" and not _conservative_ok(
            graphs[dst.rclass], s, graphs[dst.rclass].k, a, b, find
        ):
            continue
        s["parent"][b] = a
        s["adj"][a] |= s["adj"][b]
        s["members"][a] |= s["members"][b]
        merged_pairs.append((dst, src))

    if not merged_pairs:
        return 0

    # Choose a representative vreg per union-find group and rewrite.
    replacement: dict = {}
    for rclass, graph in graphs.items():
        s = state[rclass]
        groups: dict = {}
        for node in range(graph.k, graph.num_nodes):
            root = find(s["parent"], node)
            groups.setdefault(root, []).append(graph.vreg_for(node))
        for members in groups.values():
            if len(members) == 1:
                continue
            rep = _pick_representative(members, params)
            for vreg in members:
                if vreg is not rep:
                    replacement[vreg] = rep

    removed = 0
    for block in function.blocks:
        kept = []
        for instr in block.instrs:
            instr.replace_uses(replacement)
            instr.replace_defs(replacement)
            if instr.is_copy and instr.defs[0] is instr.uses[0]:
                removed += 1
                continue
            kept.append(instr)
        block.instrs = kept
    return removed


def _pick_representative(members: list, params: set):
    """Prefer the parameter (it must keep its register object), then a
    user-named register, then the lowest id — deterministic."""
    for vreg in members:
        if vreg in params:
            return vreg
    named = [v for v in members if v.name != "t"]
    pool = named or members
    return min(pool, key=lambda v: v.id)


def coalesce_copies(
    function: Function,
    target: Target,
    max_rounds: int = 50,
    strategy: str = "aggressive",
) -> int:
    """Coalesce until no copy can be merged.

    ``strategy`` is ``"aggressive"`` (Chaitin, the paper's build phase) or
    ``"conservative"`` (Briggs's later safe test).  Returns the total
    number of copies removed.
    """
    if strategy not in ("aggressive", "conservative"):
        raise ValueError(f"unknown coalescing strategy {strategy!r}")
    total = 0
    for _round in range(max_rounds):
        removed = _coalesce_round(function, target, strategy)
        if removed == 0:
            break
        total += removed
    return total
