"""Chaitin's allocator — the paper's baseline ("Old").

Simplification marks spill victims immediately; when any node is marked,
the phase ends with spill decisions made and **select never runs** for
that pass (paper Figure 7 leaves Old's first-pass Color row empty for
exactly this reason: "our method will run through the coloring phase,
where Chaitin's will not").  Only a pass with no marks proceeds to select,
which then cannot fail.
"""

from __future__ import annotations

import time

from repro.errors import AllocationError
from repro.observability.trace import coerce_tracer
from repro.regalloc.interference import InterferenceGraph
from repro.regalloc.select import select_colors
from repro.regalloc.simplify import simplify
from repro.regalloc.spill_costs import SpillCosts


class ClassAllocation:
    """Outcome of allocating one register class in one pass."""

    __slots__ = (
        "colors",
        "spilled_vregs",
        "ran_select",
        "simplify_time",
        "select_time",
        "stack",
        "marked",
        "selection",
    )

    def __init__(self, colors, spilled_vregs, ran_select,
                 simplify_time=0.0, select_time=0.0,
                 stack=None, marked=None, selection=None):
        #: VReg -> color (empty when the pass ended in spills, Chaitin).
        self.colors = colors
        #: live ranges to spill before the next pass.
        self.spilled_vregs = spilled_vregs
        #: whether the select phase executed (Figure 7's Color row).
        self.ran_select = ran_select
        self.simplify_time = simplify_time
        self.select_time = select_time
        #: simplification stack (node indices, removal order) — evidence
        #: for the paranoia layer's stack-completeness check.
        self.stack = stack
        #: nodes marked for spilling during simplify (Chaitin only).
        self.marked = marked
        #: the raw :class:`repro.regalloc.select.SelectOutcome`, so the
        #: paranoia layer can replay select-order color feasibility.
        self.selection = selection


class ChaitinAllocator:
    """Strategy object for the baseline heuristic."""

    name = "chaitin"
    optimistic = False
    #: This allocator IS the baseline the §2.3 subset guarantee is
    #: stated against; comparison checks require this token of whatever
    #: they are handed as the reference side.
    guarantees = ("chaitin-reference",)

    def allocate_class(
        self,
        graph: InterferenceGraph,
        costs: SpillCosts,
        color_order: list | None = None,
        tracer=None,
    ) -> ClassAllocation:
        tracer = coerce_tracer(tracer)
        rclass = graph.rclass.name
        started = time.perf_counter()
        with tracer.span("simplify", cat="phase", rclass=rclass):
            outcome = simplify(graph, costs, optimistic=False,
                               tracer=tracer)
        simplify_time = time.perf_counter() - started
        if outcome.marked_for_spill:
            spilled = [graph.vreg_for(n) for n in outcome.marked_for_spill]
            return ClassAllocation(
                {}, spilled, ran_select=False, simplify_time=simplify_time,
                stack=outcome.stack, marked=outcome.marked_for_spill,
            )
        started = time.perf_counter()
        with tracer.span("select", cat="phase", rclass=rclass):
            selection = select_colors(graph, outcome.stack, color_order,
                                      tracer=tracer)
        select_time = time.perf_counter() - started
        if not selection.succeeded:  # pragma: no cover - guaranteed by phase 2
            raise AllocationError(
                "Chaitin select failed on a simplified graph; this cannot "
                "happen unless the simplification invariant was broken"
            )
        colors = {
            graph.vreg_for(node): color
            for node, color in selection.colors.items()
            if not graph.is_precolored(node)
        }
        return ClassAllocation(
            colors,
            [],
            ran_select=True,
            simplify_time=simplify_time,
            select_time=select_time,
            stack=outcome.stack,
            marked=outcome.marked_for_spill,
            selection=selection,
        )
