"""The Briggs–Cooper–Kennedy–Torczon optimistic allocator — the paper's
contribution ("New").

Simplification pushes *every* node onto the stack — constrained victims
are still chosen with Chaitin's cost/degree rule so that the stack is
ordered by cost "in the vicinity of any node that his heuristic would have
marked for spilling" (§2.3), but nothing is marked.  Select then colors
optimistically; only nodes that truly find no free color are spilled.

Consequences the paper proves informally (and our tests check):

* if Chaitin colors a graph with no spills, so does this allocator, with
  identical results;
* when spills happen, the spilled set is a subset of what Chaitin spills
  on the same graph — the cost ordering makes select reconsider exactly
  Chaitin's victims, in inverse order, keeping each one that turns out to
  have a free color after all.

``order`` selects the §2.3 refinement: ``"cost"`` (default, the paper's
final algorithm) uses Chaitin's estimator for constrained victims;
``"degree"`` removes the highest-degree... rather, the *lowest-degree*
remaining node instead (pure Matula–Beck smallest-last, the §2.2 strawman
whose "arbitrary — possibly terrible — allocations" motivate the
refinement; kept for the ablation benchmark).
"""

from __future__ import annotations

import time

from repro.observability.trace import coerce_tracer
from repro.regalloc.chaitin import ClassAllocation
from repro.regalloc.interference import InterferenceGraph
from repro.regalloc.select import select_colors
from repro.regalloc.simplify import simplify
from repro.regalloc.spill_costs import SpillCosts
from repro.regalloc.worklists import DegreeBuckets


class BriggsAllocator:
    """Strategy object for the optimistic heuristic."""

    optimistic = True

    def __init__(self, order: str = "cost"):
        if order not in ("cost", "degree"):
            raise ValueError(f"unknown simplification order {order!r}")
        self.order = order
        self.name = "briggs" if order == "cost" else "briggs-degree"
        # §2.3's theorem holds only for the cost-ordered refinement: the
        # smallest-last ablation visits victims in a different order, so
        # its spill set has no containment relation to Chaitin's.  The
        # oracle layer (repro.robustness.oracle) reads this declaration
        # instead of assuming the theorem of every strategy.
        if order == "cost":
            self.guarantees = ("spills-subset-of-chaitin",
                               "matches-chaitin-when-colorable")
        else:
            self.guarantees = ()

    def allocate_class(
        self,
        graph: InterferenceGraph,
        costs: SpillCosts,
        color_order: list | None = None,
        tracer=None,
    ) -> ClassAllocation:
        tracer = coerce_tracer(tracer)
        rclass = graph.rclass.name
        started = time.perf_counter()
        with tracer.span("simplify", cat="phase", rclass=rclass):
            if self.order == "cost":
                outcome = simplify(graph, costs, optimistic=True,
                                   tracer=tracer)
                stack = outcome.stack
            else:
                stack = _smallest_last_stack(graph)
        simplify_time = time.perf_counter() - started
        started = time.perf_counter()
        with tracer.span("select", cat="phase", rclass=rclass):
            selection = select_colors(graph, stack, color_order,
                                      tracer=tracer)
        select_time = time.perf_counter() - started
        colors = {
            graph.vreg_for(node): color
            for node, color in selection.colors.items()
            if not graph.is_precolored(node)
        }
        spilled = [graph.vreg_for(node) for node in selection.uncolored]
        return ClassAllocation(
            colors,
            spilled,
            ran_select=True,
            simplify_time=simplify_time,
            select_time=select_time,
            stack=stack,
            marked=[],
            selection=selection,
        )


def _smallest_last_stack(graph: InterferenceGraph) -> list:
    """§2.2 without the cost refinement: always remove a node of minimal
    current degree (Matula–Beck), pushing everything."""
    k = graph.k
    n = graph.num_nodes
    buckets = DegreeBuckets(n, max_degree=max(1, n))
    removed = [False] * n
    for node in range(k, n):
        buckets.add(node, graph.degree(node))
    stack = []
    while len(buckets):
        node = buckets.pop_min()
        stack.append(node)
        removed[node] = True
        for neighbor in graph.neighbors(node):
            if neighbor >= k and not removed[neighbor]:
                buckets.decrement(neighbor)
    return stack
