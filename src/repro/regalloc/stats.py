"""Statistics containers for the allocation driver.

The fields mirror what the paper reports:

* Figure 5's static columns — live ranges, registers (live ranges)
  spilled, estimated spill cost;
* Figure 7's per-pass phase times — build / simplify / color / spill,
  with the per-pass spill counts in parentheses.
"""

from __future__ import annotations


class PassStats:
    """One trip around the Build–Simplify–Select(–Spill) cycle."""

    __slots__ = (
        "index",
        "build_time",
        "simplify_time",
        "select_time",
        "spill_time",
        "ran_select",
        "spilled_count",
        "spilled_cost",
        "live_ranges",
        "edges",
        "coalesced",
        "webs_split",
        "reused",
    )

    def __init__(self, index: int):
        self.index = index
        self.build_time = 0.0
        self.simplify_time = 0.0
        self.select_time = 0.0
        self.spill_time = 0.0
        self.ran_select = False
        self.spilled_count = 0
        self.spilled_cost = 0.0
        self.live_ranges = 0
        self.edges = 0
        self.coalesced = 0
        self.webs_split = 0
        #: analyses/transforms carried over from an earlier pass instead of
        #: recomputed — e.g. ``("loops", "renumber", "coalesce")``.
        self.reused: tuple = ()

    def to_dict(self) -> dict:
        """Every field, keyed by slot name — the one place the pass
        schema is defined, so exporters cannot silently drop fields."""
        data = {slot: getattr(self, slot) for slot in self.__slots__}
        data["reused"] = list(self.reused)
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "PassStats":
        stats = cls(data["index"])
        for slot in cls.__slots__:
            if slot in data:
                setattr(stats, slot, data[slot])
        stats.reused = tuple(data.get("reused", ()))
        return stats

    def __repr__(self) -> str:
        return (
            f"PassStats(#{self.index}, spilled={self.spilled_count}, "
            f"build={self.build_time:.4f}s)"
        )


class AllocationStats:
    """Whole-allocation summary across passes."""

    __slots__ = ("method", "function_name", "passes")

    def __init__(self, method: str, function_name: str):
        self.method = method
        self.function_name = function_name
        self.passes: list = []

    # ------------------------------------------------------------------
    # Figure 5 quantities
    # ------------------------------------------------------------------

    @property
    def live_ranges(self) -> int:
        """Live ranges seen by the first build (the paper's column)."""
        return self.passes[0].live_ranges if self.passes else 0

    @property
    def registers_spilled(self) -> int:
        """First-pass spill count — the paper's "Registers Spilled"
        (Figure 7 shows later passes' counts separately and Figure 5
        matches the first-pass numbers)."""
        return self.passes[0].spilled_count if self.passes else 0

    @property
    def total_registers_spilled(self) -> int:
        return sum(p.spilled_count for p in self.passes)

    @property
    def spill_cost(self) -> float:
        """Estimated cost of everything spilled, over all passes."""
        return sum(p.spilled_cost for p in self.passes)

    @property
    def pass_count(self) -> int:
        return len(self.passes)

    # ------------------------------------------------------------------
    # Figure 7 quantities
    # ------------------------------------------------------------------

    @property
    def total_time(self) -> float:
        return sum(
            p.build_time + p.simplify_time + p.select_time + p.spill_time
            for p in self.passes
        )

    def phase_rows(self) -> list:
        """Rows shaped like Figure 7: per pass, the four phase times and
        the parenthesised spill count."""
        rows = []
        for p in self.passes:
            rows.append(
                {
                    "pass": p.index,
                    "build": p.build_time,
                    "simplify": p.simplify_time,
                    "color": p.select_time if p.ran_select else None,
                    "spill": p.spill_time if p.spilled_count else None,
                    "spilled": p.spilled_count,
                }
            )
        return rows

    # ------------------------------------------------------------------
    # Structured export (the metrics layer's source of truth)
    # ------------------------------------------------------------------

    def to_dict(self) -> dict:
        """Full structured dump: every pass via
        :meth:`PassStats.to_dict` plus the derived whole-allocation
        totals.  Consumed by :mod:`repro.observability.export` and the
        ``repro allocate --json`` document."""
        return {
            "method": self.method,
            "function": self.function_name,
            "passes": [p.to_dict() for p in self.passes],
            "totals": {
                "live_ranges": self.live_ranges,
                "registers_spilled": self.registers_spilled,
                "total_registers_spilled": self.total_registers_spilled,
                "spill_cost": self.spill_cost,
                "pass_count": self.pass_count,
                "total_time": self.total_time,
            },
        }

    @classmethod
    def from_dict(cls, data: dict) -> "AllocationStats":
        stats = cls(data["method"], data["function"])
        stats.passes = [PassStats.from_dict(p) for p in data["passes"]]
        return stats

    def __repr__(self) -> str:
        return (
            f"AllocationStats({self.method} on {self.function_name}: "
            f"{self.pass_count} passes, "
            f"{self.registers_spilled} spilled, "
            f"cost {self.spill_cost:.0f})"
        )
