"""The simplification phase, shared by the Chaitin and Briggs allocators.

Both methods remove unconstrained nodes (degree < k) in the same order and
fall back to Chaitin's min-(cost/degree) rule when every remaining node has
degree >= k.  They differ in *one line* — what happens to the constrained
victim:

* **Chaitin** (``optimistic=False``): the victim is *marked for spilling*
  and removed; it never reaches the stack (paper §2.1, step 2);
* **Briggs** (``optimistic=True``): the victim is removed but *pushed on
  the stack anyway*; whether it actually spills is decided in select
  (paper §2.2/§2.3).

Because the two methods share the removal order and the tie-breaking rule
(lowest node index on equal cost/degree ratios — the paper's footnote 4
notes the choice is "often something as trivial as a symbol table index"),
Briggs's uncolored set is always a subset of Chaitin's spill set on the
same graph — the property §2.3 argues and our property tests check.

Precolored nodes are never removed; they count toward their neighbors'
degrees throughout.
"""

from __future__ import annotations

from repro.errors import AllocationError
from repro.regalloc.interference import InterferenceGraph
from repro.regalloc.spill_costs import INFINITE_COST, SpillCosts
from repro.regalloc.worklists import DegreeBuckets


class SimplifyOutcome:
    """Result of one simplification: the coloring stack and (for Chaitin)
    the set of nodes marked for spilling during the phase."""

    __slots__ = ("stack", "marked_for_spill", "constrained_choices")

    def __init__(self, stack, marked_for_spill, constrained_choices):
        self.stack = stack
        self.marked_for_spill = marked_for_spill
        #: nodes chosen by the cost/degree rule (== marked_for_spill for
        #: Chaitin; for Briggs these were pushed optimistically).
        self.constrained_choices = constrained_choices


def simplify(
    graph: InterferenceGraph,
    costs: SpillCosts,
    optimistic: bool,
    tracer=None,
) -> SimplifyOutcome:
    """Run the simplification phase over ``graph``.

    Returns the stack (node indices, removal order; color in reverse) and
    the spill marks.  ``costs`` provides the numerator of Chaitin's
    cost/degree victim metric.  ``tracer`` (optional) receives summary
    counters after the phase — never per-node work, so the hot loop is
    untouched.
    """
    k = graph.k
    n = graph.num_nodes
    buckets = DegreeBuckets(n, max_degree=max(1, n))
    removed = [False] * n

    for node in range(k, n):
        buckets.add(node, graph.degree(node))

    stack: list = []
    marked: list = []
    constrained: list = []

    def remove_node(node: int) -> None:
        removed[node] = True
        for neighbor in graph.neighbors(node):
            if neighbor >= k and not removed[neighbor]:
                buckets.decrement(neighbor)

    while len(buckets):
        if buckets.min_degree() < k:
            node = buckets.pop_min()
            stack.append(node)
            remove_node(node)
            continue
        # Every remaining node is constrained: fall back on Chaitin's
        # estimator — minimum spill cost / current degree.
        victim = _choose_spill_victim(graph, buckets, costs)
        buckets.remove(victim)
        constrained.append(victim)
        if optimistic:
            stack.append(victim)  # the paper's change: defer the decision
        else:
            marked.append(victim)
        remove_node(victim)

    if tracer is not None and tracer.enabled:
        tracer.counter("stack_depth", len(stack))
        tracer.add("constrained_choices", len(constrained))
        tracer.add("marked_for_spill", len(marked))
    return SimplifyOutcome(stack, marked, constrained)


def _choose_spill_victim(
    graph: InterferenceGraph, buckets: DegreeBuckets, costs: SpillCosts
) -> int:
    """Minimum cost/degree among remaining nodes; ties break toward the
    lowest node index so both allocators pick identically."""
    best_node = -1
    best_ratio = None
    for node in buckets.nodes():
        degree = buckets.degree[node]
        cost = costs.cost(graph.vreg_for(node))
        if cost == INFINITE_COST:
            continue
        ratio = cost / max(degree, 1)
        if best_ratio is None or ratio < best_ratio or (
            ratio == best_ratio and node < best_node
        ):
            best_ratio = ratio
            best_node = node
    if best_node < 0:
        raise AllocationError(
            "every remaining live range is unspillable; the target has too "
            "few registers for this function"
        )
    return best_node
