"""Parallel conflict-repair coloring — the third allocation strategy.

Chaitin and Briggs both serialize coloring behind a global simplify
stack, which is fine at function scale but leaves nothing to parallelize
when the graph itself is huge.  Rokos, Gorman & Kelly (arXiv:1505.04086)
color million-node graphs the other way around: *speculatively* first-fit
color every uncolored vertex as if its neighbors were frozen, then detect
the (empirically tiny) set of edges where two endpoints raced to the same
color and re-color only that conflict set.  Abu-Khzam & Chahine
(arXiv:1812.11254) apply the same repair step to a coloring invalidated
by incremental edits — which is exactly the shape of our spill-rebuild
loop, where each pass perturbs the previous pass's graph.

The engine here (:func:`repair_color`) works on a *plain* graph given as
adjacency lists, like :mod:`repro.regalloc.matula`, because the bit-matrix
rows of :class:`~repro.regalloc.interference.InterferenceGraph` cost
O(n^2) bits and stop being representable long before 10^6 nodes.  Round
structure:

1. **Speculate.**  The still-uncolored ("active") vertices are visited in
   a fixed order — reversed Matula–Beck smallest-last by default, the
   same order that makes Briggs' select phase strong (§2.2) — cut into
   fixed-size *chunks*.  Within a chunk, coloring is sequential (each
   vertex sees the tentative choices of earlier vertices in its own
   chunk); across chunks, only colors finalized in earlier rounds are
   visible.  Chunks are independent, so they can run on the PR-6
   :class:`~repro.regalloc.pool.WorkerPool` — and because the chunk
   boundaries are a function of ``chunk_size`` and the order alone
   (never of the worker count), the serial and pooled paths are
   bit-identical by construction.
2. **Detect.**  A conflict is an edge whose endpoints picked the same
   color this round.  The endpoint earlier in the coloring order keeps
   its color; the later one re-enters the active set.
3. **Repair.**  Winners are finalized; losers and vertices that found no
   free color among ``color_order`` stay active for the next round.

After ``max_rounds`` rounds (or a round that finalizes nothing), one
final *sequential* sweep over the remaining active set settles every
vertex that still has a free color; the rest are genuinely saturated by
finalized neighbors and become spill candidates, ranked by the caller
(the strategy object ranks them with the existing Chaitin cost/degree
estimate).  The driver's spill-code/rebuild cycle then plays the role of
Abu-Khzam & Chahine's edit-repair loop: the next pass re-colors the
perturbed graph from scratch, minus the spilled ranges.

``jobs=0`` auto-detects like :func:`repro.regalloc.pool.resolve_jobs`:
on a box with one CPU (or inside a daemonized pool worker, which cannot
have children) the engine stays serial; an explicit ``jobs >= 2`` forces
the pool.  Either way the result is identical.
"""

from __future__ import annotations

import os
import time

from repro.errors import InvariantError
from repro.observability.trace import coerce_tracer
from repro.regalloc.chaitin import ClassAllocation
from repro.regalloc.matula import smallest_last_order

__all__ = [
    "DEFAULT_CHUNK_SIZE",
    "DEFAULT_MAX_ROUNDS",
    "PARALLEL_THRESHOLD",
    "RepairOutcome",
    "RepairAllocator",
    "repair_color",
    "verify_coloring",
]

#: Vertices speculated per chunk.  Part of the algorithm (chunk
#: boundaries decide which tentative choices are mutually visible), NOT
#: a tuning knob the worker count may bend — that is what keeps serial
#: and pooled runs bit-identical.
DEFAULT_CHUNK_SIZE = 4096

#: Parallel speculation rounds before the sequential settling sweep.
#: Rokos et al. observe convergence in a handful of rounds on random
#: graphs; the budget only bounds the tail.
DEFAULT_MAX_ROUNDS = 32

#: Below this many active vertices a round is colored serially even when
#: a pool is available — dispatch would cost more than the coloring.
PARALLEL_THRESHOLD = 100_000


class RepairOutcome:
    """Result of :func:`repair_color` over a plain graph."""

    __slots__ = ("colors", "spilled", "rounds", "conflicts",
                 "parallel_rounds", "sweep_settled")

    def __init__(self, colors, spilled, rounds, conflicts,
                 parallel_rounds, sweep_settled):
        #: color per vertex (-1 = uncolored, i.e. in ``spilled``).
        self.colors = colors
        #: vertices left uncolorable at k colors, in coloring order —
        #: the caller ranks them for spilling.
        self.spilled = spilled
        #: speculation rounds executed (the settling sweep excluded).
        self.rounds = rounds
        #: total conflict-edge losers re-colored across all rounds.
        self.conflicts = conflicts
        #: rounds whose speculation ran on the worker pool.
        self.parallel_rounds = parallel_rounds
        #: vertices finalized by the sequential settling sweep.
        self.sweep_settled = sweep_settled


def _speculate_chunk(pairs, colors, k, color_order):
    """First-fit color one chunk given frozen ``colors``.

    ``pairs`` is the chunk's ``(vertex, adjacency_row)`` sequence, in
    coloring order.  Vertices earlier in the *same* chunk are visible
    through ``local``; everything else sees only finalized colors.
    Returns one tentative color per vertex, -1 when every color in
    ``color_order`` is taken.  Must stay a pure function of its
    arguments: it is the unit of work shipped to pool workers, and the
    serial path calls the very same code.
    """
    local: dict = {}
    out = []
    for vertex, row in pairs:
        taken = 0
        for neighbor in row:
            color = colors[neighbor]
            if color < 0:
                color = local.get(neighbor, -1)
            if color >= 0:
                taken |= 1 << color
        choice = -1
        for color in color_order:
            if not (taken >> color) & 1:
                choice = color
                break
        local[vertex] = choice
        out.append(choice)
    return out


def _speculate_groups(groups, colors, k, color_order, trace=None):
    """Pool entry point: speculate several chunks in one dispatch, so a
    round ships the (large) ``colors`` snapshot once per worker task
    instead of once per chunk.

    Returns ``(results, snapshot)``.  ``trace`` is ``None`` on the
    untraced hot path (snapshot ``None``, zero overhead); when the
    parent's tracer is live it is a dict of span args (round, trace id)
    and the worker records a ``repair-chunks`` span in its own process
    lane, shipping ``tracer.snapshot()`` back for the parent to absorb.
    Tracing never touches the chunk results — the speculated colors are
    a pure function of ``(groups, colors, k, color_order)`` either way.
    """
    if trace is None:
        return ([_speculate_chunk(chunk, colors, k, color_order)
                 for chunk in groups], None)
    from repro.observability.trace import Tracer

    tracer = Tracer()
    tracer.trace_id = trace.get("trace_id")
    span_args = {key: value for key, value in trace.items()
                 if value is not None}
    with tracer.span("repair-chunks", cat="phase",
                     chunks=len(groups),
                     vertices=sum(len(chunk) for chunk in groups),
                     **span_args):
        results = [_speculate_chunk(chunk, colors, k, color_order)
                   for chunk in groups]
    return (results, tracer.snapshot())


def _auto_jobs() -> int:
    """The engine's jobs=0 policy: one worker per CPU, but serial on a
    1-core box (same rationale as :func:`repro.regalloc.pool
    .resolve_jobs` — pooled dispatch without real cores is pure
    overhead)."""
    cpus = os.cpu_count() or 1
    return 1 if cpus <= 1 else cpus


def _in_daemon() -> bool:
    """True inside a daemonized pool worker, which may not spawn child
    processes — the strategy must fall back to serial speculation when
    ``allocate_module(jobs=N)`` runs it inside the function-level pool."""
    import multiprocessing

    return multiprocessing.current_process().daemon


def repair_color(adjacency, k, *, precolored=0, order=None,
                 color_order=None, seed=None,
                 chunk_size=DEFAULT_CHUNK_SIZE,
                 max_rounds=DEFAULT_MAX_ROUNDS, jobs=0,
                 parallel_threshold=PARALLEL_THRESHOLD,
                 tracer=None) -> RepairOutcome:
    """Conflict-repair color a plain adjacency-list graph with ``k``
    colors.

    ``precolored`` marks nodes ``0..precolored-1`` as fixed physical
    registers with ``colors[i] == i`` (the
    :class:`~repro.regalloc.interference.InterferenceGraph` convention);
    they are never recolored or spilled.  ``order`` overrides the
    coloring order (reversed smallest-last by default); ``seed`` shuffles
    it reproducibly.  ``jobs`` follows the CLI convention: 0 auto-detects
    (serial on a 1-core box), 1 forces serial, >= 2 forces the worker
    pool once a round's active set reaches ``parallel_threshold``.

    The result is a deterministic function of ``(adjacency, k,
    precolored, order, color_order, seed, chunk_size, max_rounds)`` —
    ``jobs`` and ``parallel_threshold`` only decide where chunks run,
    never what they compute.
    """
    n = len(adjacency)
    if not 0 <= precolored <= n:
        raise ValueError(f"precolored must be in [0, {n}], got {precolored}")
    if chunk_size < 1:
        raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
    tracer = coerce_tracer(tracer)
    if color_order is None:
        color_order = list(range(k))

    colors = [-1] * n
    for node in range(precolored):
        colors[node] = node

    if order is None:
        removal = smallest_last_order(adjacency)
        order = [node for node in reversed(removal) if node >= precolored]
    else:
        order = [node for node in order if node >= precolored]
    if seed is not None:
        import random

        random.Random(seed).shuffle(order)

    position = [-1] * n
    for index, node in enumerate(order):
        position[node] = index

    if jobs == 0:
        jobs = _auto_jobs()
    pool = None
    if jobs >= 2 and not _in_daemon():
        from repro.regalloc.pool import get_pool

        pool = get_pool(jobs)

    active = order
    rounds = 0
    conflicts = 0
    parallel_rounds = 0
    tentative = [-1] * n

    while active and rounds < max_rounds:
        rounds += 1
        chunks = [active[start:start + chunk_size]
                  for start in range(0, len(active), chunk_size)]
        use_pool = (pool is not None and len(chunks) > 1
                    and len(active) >= parallel_threshold)
        with tracer.span("repair-round", cat="phase", round=rounds,
                         active=len(active), chunks=len(chunks),
                         parallel=use_pool):
            if use_pool:
                parallel_rounds += 1
                speculated = _dispatch_chunks(pool, chunks, adjacency,
                                              colors, k, color_order, jobs,
                                              tracer=tracer, round_no=rounds)
            else:
                speculated = [
                    _speculate_chunk(
                        zip(chunk, map(adjacency.__getitem__, chunk)),
                        colors, k, color_order)
                    for chunk in chunks
                ]
            for chunk, tents in zip(chunks, speculated):
                for node, tent in zip(chunk, tents):
                    tentative[node] = tent

            # Detect: the endpoint earlier in the coloring order keeps
            # its color.  Only cross-chunk races can collide — within a
            # chunk later vertices already saw earlier tentatives.
            finalized = 0
            losers = 0
            next_active = []
            for node in active:
                tent = tentative[node]
                if tent < 0:
                    next_active.append(node)  # saturated this round
                    continue
                keeps = True
                for neighbor in adjacency[node]:
                    if (tentative[neighbor] == tent
                            and position[neighbor] >= 0
                            and position[neighbor] < position[node]):
                        keeps = False
                        break
                if keeps:
                    finalized += 1
                else:
                    losers += 1
                    next_active.append(node)
            # Finalize after detection so this round's checks all saw the
            # same frozen tentative state.
            survivors = set(next_active)
            for node in active:
                if node not in survivors:
                    colors[node] = tentative[node]
                tentative[node] = -1
            conflicts += losers
        tracer.counter("repair.finalized", finalized, round=rounds)
        tracer.counter("repair.conflicts", losers, round=rounds)
        active = next_active
        if finalized == 0:
            break

    # Settling sweep: one sequential first-fit pass over whatever is
    # left (a single chunk — no races possible).  Vertices it cannot
    # color are saturated by *finalized* neighbors and must spill.
    sweep_settled = 0
    spilled = []
    if active:
        with tracer.span("repair-sweep", cat="phase", active=len(active)):
            tents = _speculate_chunk(
                zip(active, map(adjacency.__getitem__, active)),
                colors, k, color_order)
            for node, tent in zip(active, tents):
                if tent >= 0:
                    colors[node] = tent
                    sweep_settled += 1
                else:
                    spilled.append(node)
    tracer.counter("repair.spilled", len(spilled))

    return RepairOutcome(colors, spilled, rounds, conflicts,
                         parallel_rounds, sweep_settled)


def _dispatch_chunks(pool, chunks, adjacency, colors, k, color_order,
                     jobs, tracer=None, round_no=0):
    """Run one round's chunks on the worker pool.

    Chunks are grouped contiguously into at most ``2 * jobs`` tasks so
    the ``colors`` snapshot (the dominant payload at graph scale) ships
    once per task, not once per chunk.  Grouping is pure packaging —
    each chunk is still speculated independently — so the flattened
    result is identical to the serial path.

    With a live ``tracer``, each task carries a trace context and ships
    its worker-lane span snapshot back, so the merged trace shows this
    round's chunk work per worker pid next to the parent's
    ``repair-round`` span.
    """
    tracer = coerce_tracer(tracer)
    trace_ctx = None
    if tracer.enabled:
        trace_ctx = {"round": round_no, "trace_id": tracer.trace_id}
    tasks = max(1, min(len(chunks), jobs * 2))
    per_task = (len(chunks) + tasks - 1) // tasks
    groups = [chunks[start:start + per_task]
              for start in range(0, len(chunks), per_task)]
    pending = []
    for group in groups:
        payload = [[(node, adjacency[node]) for node in chunk]
                   for chunk in group]
        pending.append(
            pool.submit_call(_speculate_groups,
                             (payload, colors, k, color_order, trace_ctx)))
    speculated = []
    for handle in pending:
        results, snapshot = handle.get()
        speculated.extend(results)
        if snapshot is not None:
            tracer.absorb(snapshot)
    return speculated


def verify_coloring(adjacency, colors, k, spilled=(), precolored=0):
    """The invariant layer for plain-graph colorings: every vertex is
    colored in ``[0, k)`` or listed in ``spilled``, no edge joins two
    equal colors, and precolored vertices kept their identity colors.
    Raises :class:`~repro.errors.InvariantError`; returns the number of
    colored vertices."""
    n = len(adjacency)
    spilled_set = set(spilled)
    colored = 0
    for node in range(n):
        color = colors[node]
        if node < precolored and color != node:
            raise InvariantError(
                f"precolored node {node} lost its color: {color}")
        if color < 0:
            if node not in spilled_set:
                raise InvariantError(
                    f"node {node} neither colored nor spilled")
            continue
        if color >= k:
            raise InvariantError(
                f"node {node} colored {color}, outside [0, {k})")
        colored += 1
        for neighbor in adjacency[node]:
            if neighbor < node and colors[neighbor] == color:
                raise InvariantError(
                    f"edge ({neighbor}, {node}) monochromatic: "
                    f"color {color}")
    for node in spilled_set:
        if colors[node] >= 0:
            raise InvariantError(
                f"node {node} both colored ({colors[node]}) and spilled")
    return colored


class RepairAllocator:
    """Strategy object adapting :func:`repair_color` to the driver's
    ``allocate_class`` contract.

    Spill candidates are ranked by Chaitin's cost/degree estimate
    (cheapest first), so the driver's rebuild loop spills the same kind
    of victim the other strategies would.  Declares no §2.3 guarantees:
    the repair order is not the cost order, so its spill set has no
    containment relation to Chaitin's (same situation as
    ``briggs-degree``).
    """

    name = "repair"
    optimistic = True
    guarantees = ()

    def __init__(self, chunk_size: int = DEFAULT_CHUNK_SIZE,
                 max_rounds: int = DEFAULT_MAX_ROUNDS, jobs: int = 0,
                 parallel_threshold: int = PARALLEL_THRESHOLD,
                 seed=None):
        self.chunk_size = chunk_size
        self.max_rounds = max_rounds
        self.jobs = jobs
        self.parallel_threshold = parallel_threshold
        self.seed = seed

    def allocate_class(self, graph, costs, color_order=None,
                       tracer=None) -> ClassAllocation:
        tracer = coerce_tracer(tracer)
        rclass = graph.rclass.name
        if graph.adj_list is None:
            graph.freeze()
        k = graph.k
        started = time.perf_counter()
        with tracer.span("repair", cat="phase", rclass=rclass):
            outcome = repair_color(
                graph.adj_list, k, precolored=k, color_order=color_order,
                seed=self.seed, chunk_size=self.chunk_size,
                max_rounds=self.max_rounds, jobs=self.jobs,
                parallel_threshold=self.parallel_threshold, tracer=tracer,
            )
        elapsed = time.perf_counter() - started
        colors = {
            graph.vreg_for(node): color
            for node, color in enumerate(outcome.colors)
            if node >= k and color >= 0
        }
        # Cheapest-to-spill first: the driver spills the whole list, but
        # bundles and logs read the ranking.
        ranked = sorted(
            outcome.spilled,
            key=lambda node: (
                costs.cost(graph.vreg_for(node))
                / max(1, graph.degree(node)),
                node,
            ),
        )
        spilled = [graph.vreg_for(node) for node in ranked]
        return ClassAllocation(
            colors,
            spilled,
            ran_select=True,
            simplify_time=0.0,
            select_time=elapsed,
            stack=None,
            marked=None,
            selection=None,
        )
