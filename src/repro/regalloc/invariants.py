"""The paranoia layer: phase-boundary invariants for Build–Simplify–Select.

Every other defense in the repository checks the allocator's *final*
answer (the static coloring check, the differential run).  This module
checks the allocator's *intermediate state* at each phase boundary of the
Figure-4 cycle, so a bug is caught in the pass and phase that committed
it, not three layers downstream where the evidence is gone:

* **after build** — the interference graph is internally consistent:
  frozen, self-loop free, adjacency lists in exact agreement with the bit
  matrix, symmetric, precolored clique intact; every spill cost is
  non-negative and spill temporaries are priced unspillable;
* **after simplify** — the coloring stack is *complete*: stack plus
  spill marks form a permutation of the virtual nodes (nothing dropped,
  nothing pushed twice, no precolored node ever removed);
* **after select** — the recorded decisions replay exactly: walking the
  stack in reverse, every colored node got the first free color in the
  target's color order and every uncolored node genuinely had no free
  color; colors are proper and within the register file, and the spill
  report matches the uncolored set.

Checks run inside :func:`repro.regalloc.driver.allocate_function` behind
``paranoia``:

* ``"off"`` (default) — no checking, the production hot path;
* ``"cheap"`` — O(V + E) outcome checks (graph consistency, cost sanity,
  proper coloring, spill/color disjointness and coverage);
* ``"full"`` — everything in ``cheap`` plus the stack-completeness and
  select-replay checks, which need the per-phase evidence the strategy
  objects record on :class:`repro.regalloc.chaitin.ClassAllocation`.

A violation raises :class:`repro.errors.InvariantError` (an
:class:`AllocationError`, so the hardened driver's policies, bundles and
context attachment all apply unchanged).  The fuzz loop
(:mod:`repro.robustness.fuzz`) runs with ``paranoia="full"``.

:func:`recheck_assignment` reuses the after-select logic as a standalone
defense layer over a *finished* allocation: the driver (under paranoia)
keeps the final pass's interference graphs on
:attr:`AllocationResult.graphs`, and the fault-injection probe replays a
corrupted assignment against them — catching graph-level corruption
(dropped edge, merged colors, out-of-file color) without rebuilding
liveness the way ``check_allocation`` must.
"""

from __future__ import annotations

from repro.analysis.bitset import iter_bits, popcount
from repro.errors import InvariantError
from repro.regalloc.spill_costs import INFINITE_COST

#: Recognised paranoia levels, in increasing strictness.
PARANOIA_LEVELS = ("off", "cheap", "full")


def coerce_paranoia(level) -> str:
    """Validate a paranoia level (``None`` means ``"off"``)."""
    if level is None or level is False:
        return "off"
    if level is True:
        return "full"
    if level in PARANOIA_LEVELS:
        return level
    choices = ", ".join(repr(name) for name in PARANOIA_LEVELS)
    raise InvariantError(
        f"unknown paranoia level {level!r} (choose from {choices})"
    )


# ----------------------------------------------------------------------
# After build: graph and cost consistency.
# ----------------------------------------------------------------------


def check_graph_invariants(graph, level: str = "cheap") -> None:
    """Degree counts versus adjacency, symmetry, precolored clique.

    ``cheap`` proves each node's adjacency list agrees with its bit-matrix
    row and that no node interferes with itself; ``full`` additionally
    proves exact list/mask membership, matrix symmetry and the precolored
    clique.
    """
    if graph.adj_list is None:
        raise InvariantError(
            f"{graph!r}: build handed simplify an unfrozen graph"
        )
    k = graph.k
    n = graph.num_nodes
    if len(graph.adj_mask) != n or len(graph.adj_list) != n:
        raise InvariantError(
            f"{graph!r}: {n} nodes but {len(graph.adj_mask)} matrix rows "
            f"and {len(graph.adj_list)} adjacency lists"
        )
    for node in range(n):
        mask = graph.adj_mask[node]
        if (mask >> node) & 1:
            raise InvariantError(
                f"{graph!r}: node {node} interferes with itself"
            )
        if len(graph.adj_list[node]) != popcount(mask):
            raise InvariantError(
                f"{graph!r}: node {node} has {len(graph.adj_list[node])} "
                f"list neighbors but degree {popcount(mask)} in the bit "
                f"matrix — the two representations disagree"
            )
    if level != "full":
        return
    for node in range(n):
        mask = graph.adj_mask[node]
        if set(graph.adj_list[node]) != set(iter_bits(mask)):
            raise InvariantError(
                f"{graph!r}: node {node}'s adjacency list names different "
                f"neighbors than its bit-matrix row"
            )
        for neighbor in iter_bits(mask):
            if neighbor >= n:
                raise InvariantError(
                    f"{graph!r}: node {node} adjacent to nonexistent "
                    f"node {neighbor}"
                )
            if not (graph.adj_mask[neighbor] >> node) & 1:
                raise InvariantError(
                    f"{graph!r}: edge {node}–{neighbor} is directed "
                    f"(missing its reverse half)"
                )
    for a in range(k):
        for b in range(a + 1, k):
            if not graph.interferes(a, b):
                raise InvariantError(
                    f"{graph!r}: precolored registers {a} and {b} do not "
                    f"interfere — the physical clique was lost"
                )


def check_cost_invariants(graph, costs) -> None:
    """Spill costs: non-negative, not NaN, spill temps unspillable."""
    for node in range(graph.k, graph.num_nodes):
        vreg = graph.vreg_for(node)
        cost = costs.cost(vreg)
        if not cost >= 0.0:  # catches negatives and NaN in one comparison
            raise InvariantError(
                f"{vreg.pretty()} has spill cost {cost!r}; costs must be "
                f"non-negative"
            )
        if vreg.is_spill_temp and cost != INFINITE_COST:
            raise InvariantError(
                f"spill temporary {vreg.pretty()} has finite cost {cost!r} "
                f"and could be chosen for spilling again — the "
                f"Build–Simplify–Select cycle may not terminate"
            )


# ----------------------------------------------------------------------
# After simplify + select: the per-class outcome.
# ----------------------------------------------------------------------


def _check_stack_completeness(graph, outcome) -> None:
    stack = list(outcome.stack)
    marked = list(outcome.marked or [])
    removed = stack + marked
    for node in removed:
        if graph.is_precolored(node):
            raise InvariantError(
                f"{graph!r}: precolored node {node} was simplified"
            )
    expected = set(range(graph.k, graph.num_nodes))
    seen = set(removed)
    if len(removed) != len(seen):
        duplicates = sorted(
            node for node in seen if removed.count(node) > 1
        )
        raise InvariantError(
            f"{graph!r}: node(s) {duplicates} simplified more than once"
        )
    if seen != expected:
        missing = sorted(expected - seen)
        raise InvariantError(
            f"{graph!r}: simplify dropped node(s) {missing} — the stack "
            f"plus spill marks must cover every virtual node exactly once"
        )


def _check_select_replay(graph, outcome, color_order) -> None:
    selection = outcome.selection
    k = graph.k
    order = list(color_order) if color_order is not None else list(range(k))
    replay = {node: node for node in range(k)}
    uncolored = set(selection.uncolored)
    for node in reversed(outcome.stack):
        taken = 0
        for neighbor in graph.neighbors(node):
            color = replay.get(neighbor)
            if color is not None:
                taken |= 1 << color
        first_free = next(
            (color for color in order if not (taken >> color) & 1), None
        )
        recorded = selection.colors.get(node)
        if node in uncolored:
            if first_free is not None:
                raise InvariantError(
                    f"{graph!r}: select left node {node} uncolored although "
                    f"color {first_free} was free at its turn"
                )
            continue
        if recorded is None:
            raise InvariantError(
                f"{graph!r}: node {node} is neither colored nor reported "
                f"uncolored"
            )
        if recorded != first_free:
            raise InvariantError(
                f"{graph!r}: node {node} took color {recorded} but the "
                f"color order dictates {first_free} at its turn"
            )
        replay[node] = recorded


def check_class_invariants(
    graph, outcome, color_order=None, level: str = "cheap"
) -> None:
    """Validate one class's :class:`ClassAllocation` against its graph.

    ``cheap``: colors in range, coloring proper on the bit matrix, the
    colored and spilled sets disjoint, and — when select ran — together
    covering every virtual node.  ``full`` additionally replays the
    recorded stack and select decisions (skipped transparently for
    strategies that record no evidence, e.g. spill-all).
    """
    k = graph.k
    colored_nodes = {}
    for vreg, color in outcome.colors.items():
        node = graph.node_of.get(vreg)
        if node is None:
            raise InvariantError(
                f"{vreg.pretty()} was colored but is not a node of "
                f"{graph!r}"
            )
        if not 0 <= color < k:
            raise InvariantError(
                f"{vreg.pretty()} colored {color}, outside the "
                f"{k}-register file"
            )
        colored_nodes[node] = color
    for node, color in colored_nodes.items():
        row = graph.adj_mask[node]
        if (row >> color) & 1:
            raise InvariantError(
                f"{graph.vreg_for(node).pretty()} colored {color} but "
                f"interferes with that physical register"
            )
        for neighbor in graph.neighbors(node):
            other = colored_nodes.get(neighbor)
            if other == color:
                raise InvariantError(
                    f"{graph.vreg_for(node).pretty()} and "
                    f"{graph.vreg_for(neighbor).pretty()} interfere but "
                    f"share color {color}"
                )
    spilled_nodes = set()
    for vreg in outcome.spilled_vregs:
        node = graph.node_of.get(vreg)
        if node is None:
            raise InvariantError(
                f"{vreg.pretty()} was spilled but is not a node of "
                f"{graph!r}"
            )
        spilled_nodes.add(node)
    overlap = spilled_nodes & set(colored_nodes)
    if overlap:
        names = [graph.vreg_for(node).pretty() for node in sorted(overlap)]
        raise InvariantError(
            f"{graph!r}: {names} both colored and marked for spilling"
        )
    if outcome.ran_select:
        covered = spilled_nodes | set(colored_nodes)
        expected = set(range(k, graph.num_nodes))
        if covered != expected:
            missing = [
                graph.vreg_for(node).pretty()
                for node in sorted(expected - covered)
            ]
            raise InvariantError(
                f"{graph!r}: select decided nothing for {missing}"
            )
    if level != "full":
        return
    if outcome.stack is not None:
        _check_stack_completeness(graph, outcome)
    if outcome.selection is not None and outcome.stack is not None:
        _check_select_replay(graph, outcome, color_order)


# ----------------------------------------------------------------------
# Standalone re-check of a finished allocation (fault-probe layer).
# ----------------------------------------------------------------------


def recheck_assignment(result) -> None:
    """Replay ``result.assignment`` against the final pass's interference
    graphs kept on :attr:`AllocationResult.graphs` (populated whenever the
    allocation ran with ``paranoia`` enabled).

    This is the cheapest post-hoc defense layer: no liveness or
    interference rebuild, just the stored graphs — enough to catch a
    dropped edge, merged register files, or an out-of-file color the
    moment an assignment is corrupted.  Raises :class:`InvariantError`;
    silently returns when no graphs were stored (paranoia was off).
    """
    graphs = getattr(result, "graphs", None)
    if not graphs:
        return
    assignment = result.assignment
    for graph in graphs.values():
        k = graph.k
        for node in range(k, graph.num_nodes):
            vreg = graph.vreg_for(node)
            color = assignment.get(vreg)
            if color is None:
                continue  # spilled ranges legitimately have no color
            if not 0 <= color < k:
                raise InvariantError(
                    f"{vreg.pretty()} colored {color}, outside the "
                    f"{k}-register file"
                )
            row = graph.adj_mask[node]
            if (row >> color) & 1:
                raise InvariantError(
                    f"{vreg.pretty()} colored {color} but interferes with "
                    f"that physical register"
                )
            for neighbor in graph.neighbors(node):
                if neighbor < k:
                    continue
                other = assignment.get(graph.vreg_for(neighbor))
                if other is not None and other == color and neighbor > node:
                    raise InvariantError(
                        f"{vreg.pretty()} and "
                        f"{graph.vreg_for(neighbor).pretty()} interfere "
                        f"but share color {color}"
                    )
