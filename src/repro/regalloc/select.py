"""The select (coloring) phase.

Nodes come back in reverse removal order; each is given the first color in
``color_order`` that no already-colored neighbor holds.  Two facts give
the optimistic allocator its power here (paper §2.2):

* neighbors with **the same color** consume one slot, not several — a node
  of degree >= k still colors whenever its neighbors use < k colors;
* neighbors left **uncolored** (deferred spills) consume no slot at all.

A node with no free color is left uncolored and reported; the driver
spills those live ranges and re-runs the whole cycle.  For a Chaitin-mode
run the phase is only entered with a stack guaranteed to color, so an
uncolored node indicates a bug (the driver asserts this).
"""

from __future__ import annotations

from repro.regalloc.interference import InterferenceGraph


class SelectOutcome:
    """Colors per node plus the nodes that could not be colored."""

    __slots__ = ("colors", "uncolored")

    def __init__(self, colors: dict, uncolored: list):
        self.colors = colors
        self.uncolored = uncolored

    @property
    def succeeded(self) -> bool:
        return not self.uncolored


def select_colors(
    graph: InterferenceGraph,
    stack: list,
    color_order: list | None = None,
    tracer=None,
) -> SelectOutcome:
    """Rebuild the graph from ``stack``, assigning colors optimistically.

    ``color_order`` defaults to ``0..k-1``; targets pass caller-saved
    registers first so call-free values prefer scratch registers.
    ``tracer`` (optional) receives summary counters after the phase.
    """
    k = graph.k
    order = list(color_order) if color_order is not None else list(range(k))
    colors: dict = {node: node for node in range(k)}  # precolored
    uncolored: list = []

    for node in reversed(stack):
        taken = 0
        for neighbor in graph.neighbors(node):
            color = colors.get(neighbor)
            if color is not None:
                taken |= 1 << color
        chosen = -1
        for color in order:
            if not (taken >> color) & 1:
                chosen = color
                break
        if chosen < 0:
            uncolored.append(node)
        else:
            colors[node] = chosen

    if tracer is not None and tracer.enabled:
        tracer.add("select_colored", len(stack) - len(uncolored))
        tracer.add("select_uncolored", len(uncolored))
    return SelectOutcome(colors, uncolored)
