"""Spill-cost estimation (paper §2.1).

    "We estimate the spill cost as the number of loads and stores that
     would have to be inserted, weighted by the loop nesting depth of
     each insertion point.  These costs are precomputed."

Cost of spilling a live range = Σ over its definitions of
``STORE_COST * 10**depth`` plus Σ over its uses of ``LOAD_COST * 10**depth``
(depth = loop nesting of the block holding the occurrence).

Spill temporaries — the short ranges created by earlier spill code — get
:data:`INFINITE_COST` so they are never chosen again; this is what makes
the Build–Simplify–Select cycle converge (§3.3).
"""

from __future__ import annotations

from repro.analysis.loops import LoopInfo, annotate_loop_depths
from repro.ir.function import Function

#: Effectively-infinite cost for unspillable ranges.
INFINITE_COST = float("inf")

#: Cycles charged per inserted store / load.
STORE_COST = 2
LOAD_COST = 2

#: Loop-depth weight base (Chaitin used powers of ten).
DEPTH_WEIGHT = 10


class SpillCosts:
    """Precomputed per-vreg spill costs for one function."""

    def __init__(self, costs: dict):
        self._costs = costs

    def cost(self, vreg) -> float:
        return self._costs.get(vreg, 0.0)

    def __getitem__(self, vreg) -> float:
        return self.cost(vreg)

    def __contains__(self, vreg) -> bool:
        return vreg in self._costs

    def items(self):
        """(vreg, cost) pairs — lets wrappers (e.g. fault injection's
        cost perturbation) rebuild a transformed table."""
        return self._costs.items()

    def __repr__(self) -> str:
        finite = sum(1 for c in self._costs.values() if c != INFINITE_COST)
        return f"SpillCosts({finite} finite of {len(self._costs)})"


def compute_spill_costs(
    function: Function, loop_info: LoopInfo | None = None
) -> SpillCosts:
    """Estimate the cost of spilling each virtual register."""
    if loop_info is None:
        loop_info = annotate_loop_depths(function)
    costs: dict = {}

    def weight(label: str) -> int:
        return DEPTH_WEIGHT ** loop_info.depth[label]

    for vreg in function.vregs:
        if vreg.is_spill_temp:
            costs[vreg] = INFINITE_COST

    for block in function.blocks:
        block_weight = weight(block.label)
        for instr in block.instrs:
            for d in instr.defs:
                if not d.is_spill_temp:
                    costs[d] = costs.get(d, 0.0) + STORE_COST * block_weight
            for u in instr.uses:
                if not u.is_spill_temp:
                    costs[u] = costs.get(u, 0.0) + LOAD_COST * block_weight

    # Parameters arrive in a register: spilling one inserts a store at
    # entry (depth 0).
    for param in function.params:
        if not param.is_spill_temp:
            costs[param] = costs.get(param, 0.0) + STORE_COST

    return SpillCosts(costs)
