"""Live-range splitting around loops (the paper's §4 future work).

    "We may also explore live range splitting as a means for improving
     the overall allocation."

The classic case the paper's SVD exposes: a value defined before a loop
nest and used only after it is *live through* the loop, occupying a
register for the whole nest even though the loop never touches it.
Splitting stores such a value into a frame slot on every loop entry edge
and reloads it on every exit edge where it is still live — so inside the
loop it is simply dead.  One store plus one reload per loop execution is
far cheaper than the inner-loop spill traffic the untouched range can
force.

The transformation:

1. for each **outermost** natural loop (depth 1 — deeper headers would
   put the store/reload traffic inside an enclosing loop, turning the
   split into a pessimisation), find registers live into the header with
   **no occurrence anywhere in the loop body** (and not already spill
   machinery);
2. apply only where the loop is genuinely *pressured*: MAXLIVE of the
   candidate's class inside the body reaches the register-file size
   (otherwise the range rides through harmlessly);
3. insert ``spill`` before the loop on each entry edge and ``reload`` on
   each exit edge that the value survives, splitting critical edges as
   needed.

Safety: every path through the loop hits a reload before any later use;
paths bypassing the loop never see the slot.  Liveness afterwards shows
the value dead throughout the body, which is what lowers the interference
degree inside the nest.  (No web surgery is required — the interference
builder works from liveness, not from names.)
"""

from __future__ import annotations

from repro.analysis.cfg import CFG
from repro.analysis.liveness import Liveness
from repro.analysis.loops import LoopInfo
from repro.ir.basicblock import Block
from repro.ir.function import Function
from repro.ir.instructions import Instr
from repro.ir.values import RClass
from repro.machine.target import Target

_SPILL_OP = {RClass.INT: "spill", RClass.FLOAT: "fspill"}
_RELOAD_OP = {RClass.INT: "reload", RClass.FLOAT: "freload"}


def _split_edge(function: Function, pred: Block, target_label: str) -> Block:
    """Insert a fresh block on the edge pred -> target; returns it."""
    middle = function.new_block("split")
    middle.append(Instr("jmp", targets=[target_label]))
    terminator = pred.terminator
    terminator.targets = [
        middle.label if t == target_label else t for t in terminator.targets
    ]
    return middle


def _insert_before_terminator(block: Block, instr: Instr) -> None:
    block.instrs.insert(len(block.instrs) - 1, instr)


def split_live_ranges(function: Function, target: Target) -> int:
    """Split loop-transparent live ranges; returns how many were split.

    Should run before allocation (the driver's ``split_ranges`` flag).
    """
    loop_info = LoopInfo(function)
    if not loop_info.loops:
        return 0
    split_count = 0
    by_id = {v.id: v for v in function.vregs}
    class_of = {v.id: v.rclass for v in function.vregs}

    outermost = [
        loop for loop in loop_info.loops if loop_info.depth[loop.header] == 1
    ]

    # Work loop-by-loop; recompute CFG/liveness after each mutation batch.
    for loop in sorted(outermost, key=lambda l: len(l.body)):
        cfg = CFG(function)
        liveness = Liveness(function, cfg)
        body_blocks = [function.block(label) for label in loop.body]

        occurs_in_body: set = set()
        for block in body_blocks:
            for instr in block.instrs:
                for vreg in list(instr.defs) + list(instr.uses):
                    occurs_in_body.add(vreg)

        # MAXLIVE per class inside the body: the real pressure signal.
        maxlive = {RClass.INT: 0, RClass.FLOAT: 0}
        for block in body_blocks:
            for _index, _instr, live_mask in liveness.live_after(block):
                counts = {RClass.INT: 0, RClass.FLOAT: 0}
                mask = live_mask
                while mask:
                    low = mask & -mask
                    mask ^= low
                    rclass = class_of.get(low.bit_length() - 1)
                    if rclass is not None:
                        counts[rclass] += 1
                for rclass, count in counts.items():
                    maxlive[rclass] = max(maxlive[rclass], count)

        header = function.block(loop.header)
        live_at_header = liveness.live_in[header.label]
        candidates = []
        mask = live_at_header
        while mask:
            low = mask & -mask
            mask ^= low
            vreg = by_id.get(low.bit_length() - 1)
            if vreg is None or vreg in occurs_in_body:
                continue
            if vreg.is_spill_temp:
                continue
            # Pressure gate: split only when the class's live pressure in
            # the body actually reaches the register file.
            if maxlive[vreg.rclass] < target.regs(vreg.rclass):
                continue
            candidates.append(vreg)
        if not candidates:
            continue

        entry_preds = [
            function.block(p)
            for p in cfg.preds[loop.header]
            if p not in loop.body
        ]
        exit_edges = sorted(
            {
                (block.label, succ)
                for block in body_blocks
                for succ in block.successor_labels()
                if succ not in loop.body
            }
        )

        slots = {vreg: function.new_spill_slot() for vreg in candidates}

        # Stores on every entry edge (one split block per edge at most,
        # shared by all candidates).
        for pred in entry_preds:
            if pred.successor_labels() == [loop.header]:
                store_block = pred
            else:
                store_block = _split_edge(function, pred, loop.header)
            for vreg in candidates:
                _insert_before_terminator(
                    store_block,
                    Instr(_SPILL_OP[vreg.rclass], uses=[vreg], imm=slots[vreg]),
                )

        # Reloads on every exit edge the value survives.
        for block_label, succ_label in exit_edges:
            live_candidates = [
                vreg
                for vreg in candidates
                if liveness.is_live_in(succ_label, vreg)
            ]
            if not live_candidates:
                continue
            succ = function.block(succ_label)
            external_preds = [
                p for p in cfg.preds[succ_label] if p not in loop.body
            ]
            if external_preds:
                middle = _split_edge(
                    function, function.block(block_label), succ_label
                )
                for vreg in live_candidates:
                    _insert_before_terminator(
                        middle,
                        Instr(_RELOAD_OP[vreg.rclass], [vreg], imm=slots[vreg]),
                    )
            else:
                for vreg in live_candidates:
                    succ.instrs.insert(
                        0,
                        Instr(_RELOAD_OP[vreg.rclass], [vreg], imm=slots[vreg]),
                    )
        split_count += len(candidates)
    return split_count
