"""Graph-coloring register allocation: Chaitin's heuristic and the paper's
optimistic improvement.

The package decomposes the allocator the way the paper does (Figure 4):

* **build** — :mod:`interference` (graph construction with precolored
  physical registers and call-clobber edges), :mod:`coalesce` (aggressive
  copy coalescing), :mod:`spill_costs` (10^depth-weighted cost estimates);
* **simplify** — :mod:`simplify` (the shared removal engine over the
  Matula–Beck degree buckets of :mod:`worklists`), parameterised by
  :mod:`chaitin` (spill during simplification) or :mod:`briggs` (push
  everything, defer the decision);
* **select** — :mod:`select` (optimistic color assignment that leaves
  uncolorable nodes for spilling);
* **spill** — :mod:`spill` (store-after-def / load-before-use insertion);
* **driver** — :mod:`driver` (the Build–Simplify–Select cycle, statistics,
  and validation).

:mod:`matula` additionally provides the standalone Matula–Beck
smallest-last ordering the paper credits as the inspiration (§2.2), and
:mod:`repair` the parallel conflict-repair strategy (speculate / detect /
re-color, after Rokos–Gorman–Kelly) that scales coloring to million-node
graphs — see docs/ALGORITHMS.md.
"""

from repro.regalloc.interference import (
    InterferenceGraph,
    build_interference_graph,
    build_interference_graphs,
)
from repro.regalloc.worklists import DegreeBuckets
from repro.regalloc.spill_costs import SpillCosts, compute_spill_costs, INFINITE_COST
from repro.regalloc.coalesce import coalesce_copies
from repro.regalloc.simplify import simplify
from repro.regalloc.select import select_colors
from repro.regalloc.chaitin import ChaitinAllocator
from repro.regalloc.briggs import BriggsAllocator
from repro.regalloc.naive import SpillAllAllocator
from repro.regalloc.matula import smallest_last_order, greedy_color
from repro.regalloc.repair import RepairAllocator, repair_color, verify_coloring
from repro.regalloc.spill import insert_spill_code
from repro.regalloc.driver import (
    AllocationFailure,
    AllocationResult,
    FailurePolicy,
    ModuleAllocation,
    allocate_function,
    allocate_module,
    check_allocation,
)
from repro.regalloc.invariants import (
    PARANOIA_LEVELS,
    check_class_invariants,
    check_cost_invariants,
    check_graph_invariants,
    coerce_paranoia,
    recheck_assignment,
)
from repro.regalloc.stats import AllocationStats, PassStats

__all__ = [
    "InterferenceGraph",
    "build_interference_graph",
    "build_interference_graphs",
    "DegreeBuckets",
    "SpillCosts",
    "compute_spill_costs",
    "INFINITE_COST",
    "coalesce_copies",
    "simplify",
    "select_colors",
    "ChaitinAllocator",
    "BriggsAllocator",
    "SpillAllAllocator",
    "RepairAllocator",
    "repair_color",
    "verify_coloring",
    "smallest_last_order",
    "greedy_color",
    "insert_spill_code",
    "AllocationFailure",
    "AllocationResult",
    "FailurePolicy",
    "ModuleAllocation",
    "allocate_function",
    "allocate_module",
    "check_allocation",
    "PARANOIA_LEVELS",
    "check_class_invariants",
    "check_cost_invariants",
    "check_graph_invariants",
    "coerce_paranoia",
    "recheck_assignment",
    "AllocationStats",
    "PassStats",
]
