"""Matula–Beck degree buckets (paper §2.2).

    "Let N be an array, such that N[i] is the first element of a linked
     list of nodes that have i neighbors."

The structure supports the three operations the simplification phase
needs, each O(1) except the bounded bucket scan:

* ``pop_min()`` — remove and return a node of globally minimal degree;
* ``remove(node)`` — remove a specific node (the spill victim);
* ``decrement(node)`` — a neighbor was deleted; move down one bucket.

The scan that finds the lowest non-empty bucket restarts at ``i - 1``
after removing a node of degree ``i`` — the paper's refinement: deleting
a node can create degree ``i-1`` nodes but nothing lower, so buckets
``0..i-2`` stay empty.  Total scanning over a whole simplification is
therefore O(V + E).
"""

from __future__ import annotations

from repro.errors import AllocationError


class DegreeBuckets:
    """Bucketed doubly-linked lists of nodes keyed by current degree.

    Nodes are integers ``0..n-1``.  Only nodes passed to ``add`` are
    tracked (the allocator keeps precolored nodes out).
    """

    _NIL = -1

    def __init__(self, n: int, max_degree: int):
        self.max_degree = max_degree
        self.head = [self._NIL] * (max_degree + 1)
        self.next = [self._NIL] * n
        self.prev = [self._NIL] * n
        self.degree = [0] * n
        self.present = [False] * n
        self.scan_from = 0
        self.count = 0

    # ------------------------------------------------------------------
    # Linked-list plumbing
    # ------------------------------------------------------------------

    def _link(self, node: int, degree: int) -> None:
        old_head = self.head[degree]
        self.next[node] = old_head
        self.prev[node] = self._NIL
        if old_head != self._NIL:
            self.prev[old_head] = node
        self.head[degree] = node

    def _unlink(self, node: int) -> None:
        degree = self.degree[node]
        nxt, prv = self.next[node], self.prev[node]
        if prv != self._NIL:
            self.next[prv] = nxt
        else:
            self.head[degree] = nxt
        if nxt != self._NIL:
            self.prev[nxt] = prv

    # ------------------------------------------------------------------
    # Public operations
    # ------------------------------------------------------------------

    def add(self, node: int, degree: int) -> None:
        if self.present[node]:
            raise AllocationError(f"node {node} already in buckets")
        if degree > self.max_degree:
            raise AllocationError(
                f"degree {degree} exceeds bucket bound {self.max_degree}"
            )
        self.degree[node] = degree
        self.present[node] = True
        self._link(node, degree)
        self.count += 1
        if degree < self.scan_from:
            self.scan_from = degree

    def __contains__(self, node: int) -> bool:
        return self.present[node]

    def __len__(self) -> int:
        return self.count

    def min_degree(self) -> int:
        """Degree of the lowest non-empty bucket (advances the scan pointer)."""
        if self.count == 0:
            raise AllocationError("buckets are empty")
        index = self.scan_from
        while self.head[index] == self._NIL:
            index += 1
        self.scan_from = index
        return index

    def pop_min(self) -> int:
        """Remove and return a node of minimal degree.

        Afterwards the scan restarts at ``degree - 1`` (Matula–Beck's
        shortening of the search).
        """
        degree = self.min_degree()
        node = self.head[degree]
        self._unlink(node)
        self.present[node] = False
        self.count -= 1
        self.scan_from = max(0, degree - 1)
        return node

    def remove(self, node: int) -> None:
        """Remove a specific node (used for spill victims)."""
        if not self.present[node]:
            raise AllocationError(f"node {node} not in buckets")
        self._unlink(node)
        self.present[node] = False
        self.count -= 1
        self.scan_from = max(0, self.degree[node] - 1)

    def decrement(self, node: int) -> None:
        """A neighbor of ``node`` was removed from the graph."""
        if not self.present[node]:
            return
        degree = self.degree[node]
        if degree == 0:
            raise AllocationError(f"cannot decrement degree-0 node {node}")
        self._unlink(node)
        self.degree[node] = degree - 1
        self._link(node, degree - 1)
        if degree - 1 < self.scan_from:
            self.scan_from = degree - 1

    def nodes(self) -> list:
        """All tracked nodes, ascending by current degree (for tests)."""
        result = []
        for degree in range(self.max_degree + 1):
            node = self.head[degree]
            while node != self._NIL:
                result.append(node)
                node = self.next[node]
        return result
