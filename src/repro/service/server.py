"""The hardened allocation service: ``repro serve``.

A zero-dependency stdlib-asyncio daemon that accepts mini-FORTRAN source
or :mod:`repro.ir.wire` module text over the NDJSON protocol
(:mod:`repro.service.protocol`), runs Build–Simplify–Select on the
persistent :class:`~repro.regalloc.pool.WorkerPool`, and answers with
register assignments plus a ``repro-metrics/1`` document on request.

The interesting part is what happens when things go wrong.  Five
hardening layers, outermost first:

1. **Admission control** — at most ``queue_limit`` requests may be
   admitted beyond the ``concurrency`` actually executing; request
   ``queue_limit + concurrency + 1`` is shed immediately with a 429
   instead of growing an unbounded backlog.  Load shedding is counted
   (``shed``) and flips ``/readyz`` to 503 while saturated.
2. **Deadline budgets** — every request carries a deadline (defaulted
   and clamped by the server).  Queue wait burns the budget; what is
   left when execution starts is divided across the module's functions
   and handed to the pool as its per-function timeout, so the driver's
   own watchdog (hang detection, pool restart) enforces the deadline
   from the inside.  An asyncio backstop at 1.5× budget catches
   anything the inner timeout misses.  Either way: 504.
3. **Circuit breaker** — ``breaker_threshold`` *consecutive* backend
   failures (crashes, hangs, deadline blowouts) open the breaker; while
   open every request is a fast 503 rather than another slow failure.
   After ``breaker_cooldown`` seconds one trial request is admitted and
   the transition *restarts the worker pools* so the trial runs on
   fresh processes.  A degraded-but-answered request counts as a
   failure for the breaker (the backend is sick) while still returning
   its 200.
4. **Graceful degradation** — the per-request allocation runs under the
   PR-2 :class:`~repro.regalloc.driver.FailurePolicy` (default
   ``degrade-to-naive``): a function whose allocation dies comes back
   spill-everything-correct rather than not at all, with the failure on
   record in the response and a crash bundle under
   ``bundle_dir/request-<n>/`` for offline repro.
5. **Teardown discipline** — SIGTERM/SIGINT stop accepting, drain
   in-flight requests, then run
   :func:`repro.regalloc.pool.shutdown_pools` *before* interpreter
   teardown, so no warm worker outlives the daemon.

Operational surface: ``GET /healthz`` (liveness), ``GET /readyz``
(readiness: accepting ∧ breaker not open ∧ queue not full),
``GET /metrics`` (cumulative ``service`` counters, pool/cache
diagnostics, and server-side latency histograms — queue wait, pool
dispatch, end-to-end — as p50/p95/p99 summaries; append
``?format=prom`` for Prometheus text exposition), and ``GET /events``
(the bounded structured event ring as ``repro-events/1`` NDJSON:
admissions, sheds, breaker transitions, degrades, journal replays,
pool restarts, repair-round summaries; ``?since=SEQ`` resumes a
cursor) answer plain HTTP on the same port.

Per-request tracing is opt-in: a request carrying ``"trace": true`` is
allocated under a live :class:`~repro.observability.trace.Tracer`
stamped with the request's trace id, and the reply carries the merged
Chrome trace (service span → pool worker lanes → repair rounds) under
``"trace"``.  Every reply — traced or not — carries its ``trace_id``.
Traced requests bypass the response cache (a cached replay would drop
worker spans), which is exactly why tracing is per-request and not a
server mode; ``ServiceConfig(trace_dir=...)`` additionally spools each
requested trace to ``trace-<id>.json``.

Chaos hooks (the ``fault`` request field) are gated behind
``ServiceConfig(allow_faults=True)``: only the chaos harness and the
fault tests enable them, and every other server answers 403 — a client
must never be able to wedge a worker or corrupt the disk cache on a
production instance.
"""

from __future__ import annotations

import asyncio
import concurrent.futures
import contextlib
import itertools
import os
import pathlib
import random
import time

from repro.errors import ReproError
from repro.frontend import compile_source
from repro.ir.wire import decode_module
from repro.machine import rt_pc
from repro.observability import Tracer
from repro.observability.events import EventLog
from repro.observability.export import chrome_trace_events, write_chrome_trace
from repro.observability.hist import (
    PROMETHEUS_CONTENT_TYPE,
    LogHistogram,
    prometheus_text,
)
from repro.regalloc import allocate_module
from repro.regalloc.pool import (
    RESPONSE_CACHE,
    install_signal_teardown,
    restart_pools,
    shutdown_pools,
)
from repro.service.breaker import CircuitBreaker
from repro.service import protocol
from repro.service.protocol import (
    PROTOCOL_VERSION,
    RequestError,
    decode_message,
    encode_message,
    error_response,
    flat_assignment,
    http_response,
    parse_allocate_request,
    response,
)

__all__ = ["ServiceConfig", "AllocationService", "run_server"]

#: NDJSON line-length ceiling (16 MiB) — a runaway client cannot balloon
#: the reader buffer.
_LINE_LIMIT = 16 * 1024 * 1024


class ServiceConfig:
    """Knobs for one :class:`AllocationService`; all have serving
    defaults, the chaos harness and tests tighten them."""

    __slots__ = (
        "host", "port", "concurrency", "queue_limit", "default_deadline",
        "max_deadline", "breaker_threshold", "breaker_cooldown", "jobs",
        "policy", "retries", "bundle_dir", "cache_dir", "optimize",
        "allow_faults", "journal_path", "trace_dir",
    )

    def __init__(self, host="127.0.0.1", port=0, concurrency=2,
                 queue_limit=8, default_deadline=30.0, max_deadline=120.0,
                 breaker_threshold=5, breaker_cooldown=2.0, jobs=2,
                 policy="degrade-to-naive", retries=1, bundle_dir=None,
                 cache_dir=None, optimize=False, allow_faults=False,
                 journal_path=None, trace_dir=None):
        self.host = host
        #: 0 asks the OS for an ephemeral port; the bound port is on
        #: :attr:`AllocationService.port` after :meth:`~AllocationService.start`.
        self.port = port
        self.concurrency = max(1, concurrency)
        self.queue_limit = max(0, queue_limit)
        self.default_deadline = default_deadline
        self.max_deadline = max_deadline
        self.breaker_threshold = breaker_threshold
        self.breaker_cooldown = breaker_cooldown
        self.jobs = jobs
        self.policy = policy
        self.retries = retries
        self.bundle_dir = bundle_dir
        #: attach the checksummed disk tier of the response cache here.
        self.cache_dir = cache_dir
        self.optimize = optimize
        #: chaos hooks are opt-in: only the chaos harness and the fault
        #: tests set this.  A production server answers 403 to any
        #: request carrying a ``fault`` field — a client must never be
        #: able to wedge workers or damage the disk cache by policy.
        self.allow_faults = allow_faults
        #: crash-safe request journal (see :mod:`repro.durability`):
        #: admitted requests are journaled before execution and marked
        #: answered after; a restarted server replays the unfinished
        #: ones before reporting ready.
        self.journal_path = journal_path
        #: spool every client-requested per-request trace to
        #: ``<trace_dir>/trace-<id>.json`` (``repro serve --trace-dir``).
        self.trace_dir = trace_dir


class AllocationService:
    """One serving instance; create, ``await start()``, ``await stop()``."""

    def __init__(self, config: ServiceConfig = None, tracer=None):
        self.config = config or ServiceConfig()
        self.tracer = tracer if tracer is not None else Tracer()
        #: structured event ring behind ``GET /events`` / ``repro tail``.
        self.events = EventLog()
        #: always-on latency histograms behind ``/metrics``:
        #: ``queue_wait`` (received → execution start), ``dispatch``
        #: (blocking allocation call), ``e2e`` (received → reply, on
        #: *every* allocate reply path — the population a client's own
        #: tail measurement sees, which is what makes server p99 and
        #: chaos-harness p99 comparable).
        self.hists = {
            "queue_wait": LogHistogram(),
            "dispatch": LogHistogram(),
            "e2e": LogHistogram(),
        }
        #: allocator counters absorbed from traced requests' tracers
        #: (``repair.finalized``/``repair.conflicts`` per round, etc.).
        #: Untraced requests run with no tracer, so these accumulate
        #: only from requests that asked for tracing.
        self.allocator_counters: dict = {}
        self._trace_seq = itertools.count(1)
        self.breaker = CircuitBreaker(
            threshold=self.config.breaker_threshold,
            cooldown=self.config.breaker_cooldown,
            on_half_open=self._half_open_restart,
        )
        self.accepting = False
        self.port = None
        self._server = None
        self._executor = None
        self._semaphore = None
        self._admitted = 0           # requests admitted, not yet answered
        #: bundle-dir sequence; drawn with ``next()`` so concurrent
        #: executor threads can never share a ``request-<n>`` directory
        #: (itertools.count.__next__ is atomic under the GIL).
        self._request_seq = itertools.count(1)
        self._started_at = None
        self._rng = random.Random()
        #: set by stop() — including the client-driven ``shutdown`` op —
        #: so serve_until() wakes even when the caller's stop_event
        #: never fires (the zombie-after-shutdown case).
        self._stop_requested = asyncio.Event()
        self._stopped = asyncio.Event()
        self._stopping = False
        #: request journal (durability): None unless configured.
        self._journal = None
        self._journal_seq = itertools.count(1)
        self._recovery_done = True
        self._recovery_task = None
        self._recovery = {"pending_at_start": 0, "recovered": 0,
                          "recovery_failed": 0}
        self.counters = {
            "requests": 0,            # allocate requests received
            "served": 0,              # 200s, degraded or not
            "degraded": 0,            # 200s with at least one failure
            "shed": 0,                # 429: admission queue full
            "breaker_rejected": 0,    # 503: breaker open
            "deadline_exceeded": 0,   # 504
            "failed": 0,              # 500: policy re-raised
            "bad_requests": 0,        # 400
            "connections": 0,
        }

    # -- lifecycle -----------------------------------------------------

    async def start(self) -> None:
        if self.config.cache_dir is not None:
            RESPONSE_CACHE.attach_disk(self.config.cache_dir)
        self._executor = concurrent.futures.ThreadPoolExecutor(
            max_workers=self.config.concurrency,
            thread_name_prefix="repro-serve",
        )
        self._semaphore = asyncio.Semaphore(self.config.concurrency)
        self._server = await asyncio.start_server(
            self._handle_connection, self.config.host, self.config.port,
            limit=_LINE_LIMIT,
        )
        self.port = self._server.sockets[0].getsockname()[1]
        self.accepting = True
        self._started_at = time.monotonic()
        if self.config.journal_path is not None:
            from repro.durability.journal import Journal

            self._journal = Journal(self.config.journal_path)
            records = self._journal.records()
            answered = {
                record.get("jid") for record in records
                if record.get("type") == "response"
            }
            backlog = [
                record for record in records
                if record.get("type") == "request"
                and record.get("jid") not in answered
            ]
            jids = [record.get("jid", 0) for record in records
                    if record.get("type") == "request"]
            self._journal_seq = itertools.count(max(jids, default=0) + 1)
            self._recovery["pending_at_start"] = len(backlog)
            if backlog:
                # A previous life accepted these and died before
                # answering: replay them (the disk cache makes the redo
                # cheap and the answers land back in it), and stay
                # not-ready until the backlog is drained.
                self.events.emit("journal-replay", phase="start",
                                 pending=len(backlog))
                self._recovery_done = False
                self._recovery_task = asyncio.ensure_future(
                    self._replay_backlog(backlog)
                )

    async def stop(self) -> None:
        """Stop accepting, drain in-flight work, tear down the pools.

        Idempotent and safe to race: the first caller tears down, any
        concurrent caller waits for that teardown to finish (the
        ``shutdown`` op and :meth:`serve_until` both call this).
        """
        self.accepting = False
        self._stop_requested.set()
        if self._stopping:
            await self._stopped.wait()
            return
        self._stopping = True
        try:
            if self._server is not None:
                self._server.close()
                await self._server.wait_closed()
                self._server = None
            deadline = time.monotonic() + self.config.max_deadline
            while self._admitted > 0 and time.monotonic() < deadline:
                await asyncio.sleep(0.02)
            if self._recovery_task is not None:
                self._recovery_task.cancel()
                with contextlib.suppress(Exception,
                                         asyncio.CancelledError):
                    await self._recovery_task
                self._recovery_task = None
            if self._executor is not None:
                self._executor.shutdown(wait=True, cancel_futures=True)
                self._executor = None
            if self._journal is not None:
                self._journal.close()
                self._journal = None
            shutdown_pools()
            if self.config.cache_dir is not None:
                RESPONSE_CACHE.detach_disk()
        finally:
            self._stopped.set()

    async def serve_until(self, stop_event: asyncio.Event) -> None:
        """Serve until ``stop_event`` fires *or* the service is stopped
        from the inside (a client ``shutdown`` op) — without the second
        arm the daemon would linger as a zombie after a client shutdown,
        listener closed, waiting on a stop_event nobody will ever set.
        """
        waiters = [
            asyncio.ensure_future(stop_event.wait()),
            asyncio.ensure_future(self._stop_requested.wait()),
        ]
        try:
            await asyncio.wait(waiters,
                               return_when=asyncio.FIRST_COMPLETED)
        finally:
            for waiter in waiters:
                waiter.cancel()
        await self.stop()

    # -- connection handling -------------------------------------------

    async def _handle_connection(self, reader, writer) -> None:
        self.counters["connections"] += 1
        try:
            await self._serve_connection(reader, writer)
        except asyncio.CancelledError:
            # Loop teardown cancelled an idle keep-alive connection; the
            # drain in stop() already guaranteed no reply is in flight.
            pass
        finally:
            with contextlib.suppress(Exception, asyncio.CancelledError):
                writer.close()
                await writer.wait_closed()

    async def _serve_connection(self, reader, writer) -> None:
        while True:
            try:
                line = await reader.readline()
            except (asyncio.LimitOverrunError, ValueError):
                writer.write(encode_message(error_response(
                    None, 400, "request line too long")))
                break
            except (ConnectionResetError, BrokenPipeError):
                break
            if not line:
                break
            if line[:4] in (b"GET ", b"HEAD"):
                await self._handle_http(line, reader, writer)
                break
            stop_after = await self._handle_line(line, writer)
            try:
                await writer.drain()
            except (ConnectionResetError, BrokenPipeError):
                break
            if stop_after:
                break

    async def _handle_line(self, line: bytes, writer) -> bool:
        """Answer one NDJSON request; True when the connection (or the
        whole server, for ``shutdown``) should wind down."""
        received = time.monotonic()
        try:
            message = decode_message(line)
        except RequestError as error:
            self.counters["bad_requests"] += 1
            writer.write(encode_message(error_response(
                None, error.status, str(error))))
            return False
        op = message["op"]
        request_id = message.get("id")
        if op == "ping":
            writer.write(encode_message(response(
                request_id, ok=True, protocol=PROTOCOL_VERSION)))
            return False
        if op == "stats":
            writer.write(encode_message(response(
                request_id, service=self.service_section())))
            return False
        if op == "shutdown":
            writer.write(encode_message(response(request_id, ok=True)))
            with contextlib.suppress(Exception):
                await writer.drain()
            asyncio.get_running_loop().call_soon(
                asyncio.ensure_future, self.stop())
            return True
        reply = await self._handle_allocate(message, received)
        writer.write(encode_message(reply))
        return False

    async def _handle_allocate(self, message: dict, received: float) -> dict:
        """Answer one allocate request, stamping the trace id and
        recording end-to-end latency on **every** reply path — rejects
        included — so the server-side ``e2e`` histogram covers the same
        request population a client-side tail measurement does."""
        self.counters["requests"] += 1
        trace_id = f"{os.getpid():x}-{next(self._trace_seq)}"
        reply = await self._allocate_reply(message, received, trace_id)
        if isinstance(reply, dict):
            reply.setdefault("trace_id", trace_id)
        self.hists["e2e"].record(max(time.monotonic() - received, 0.0))
        return reply

    async def _allocate_reply(self, message: dict, received: float,
                              trace_id: str) -> dict:
        request_id = message.get("id")
        try:
            request = parse_allocate_request(
                message, self.config.default_deadline,
                self.config.max_deadline)
        except RequestError as error:
            self.counters["bad_requests"] += 1
            return error_response(request_id, error.status, str(error))
        if request.fault is not None and not self.config.allow_faults:
            # Chaos hooks are live only when the operator opted in; on a
            # production server a `fault` field is a forbidden request,
            # not an available feature (worker_hang would wedge a
            # worker, cache_corrupt would damage every disk entry).
            self.counters["bad_requests"] += 1
            return error_response(
                request_id, 403,
                "fault injection is disabled on this server",
                reason="faults_disabled")
        # Layer 1: admission control.  Everything admitted beyond the
        # executing `concurrency` is queue; bound it.
        if not self.accepting:
            return error_response(request_id, 503, "shutting down",
                                  reason="shutdown")
        if self._admitted >= self.config.concurrency + self.config.queue_limit:
            self.counters["shed"] += 1
            self.events.emit(
                "shed", trace_id=trace_id, id=request_id,
                in_flight=self._admitted,
                queue_limit=self.config.queue_limit)
            return error_response(
                request_id, 429, "queue full, request shed",
                reason="shed", queue_limit=self.config.queue_limit)
        # Layer 3: circuit breaker.
        if not self._breaker_call("allow"):
            self.counters["breaker_rejected"] += 1
            return error_response(
                request_id, 503, "circuit breaker open",
                reason="breaker_open",
                retry_after=self.config.breaker_cooldown)
        self._admitted += 1
        self.events.emit(
            "admission", trace_id=trace_id, id=request_id,
            method=request.method, deadline=request.deadline,
            traced=request.trace, in_flight=self._admitted)
        jid = self._journal_request(message, request)
        try:
            result = await self._execute(request, received, trace_id)
            self._journal_outcome(jid, result)
            return result
        finally:
            self._admitted -= 1

    # -- breaker transitions as events ---------------------------------

    def _breaker_call(self, method_name: str):
        """Invoke one breaker method, turning any state transition it
        causes into a ``breaker`` event — transitions happen inside
        ``allow``/``record_failure``/``record_success``, so this wrapper
        is the one place they all become visible."""
        before = self.breaker.state
        result = getattr(self.breaker, method_name)()
        after = self.breaker.state
        if after != before:
            self.events.emit(
                "breaker", **{"from": before, "to": after,
                              "consecutive_failures":
                                  self.breaker.consecutive_failures,
                              "trips": self.breaker.trips})
        return result

    def _half_open_restart(self) -> None:
        """The breaker's open → half-open hook: restart the worker pools
        so the trial request runs on fresh processes, and say so."""
        self.events.emit("pool-restart", reason="breaker_half_open")
        restart_pools()

    # -- request journal (durability) ----------------------------------

    def _journal_request(self, message: dict, request):
        """Journal one admitted request; returns its journal id (or
        ``None`` when journaling is off).  Chaos requests are never
        journaled — replaying an injected fault at startup would be a
        self-inflicted wound."""
        if self._journal is None or request.fault is not None:
            return None
        jid = next(self._journal_seq)
        record = {"type": "request", "jid": jid}
        for key in ("id", "name", "source", "wire", "method",
                    "int_regs", "float_regs", "validate"):
            value = message.get(key)
            if value is not None:
                record[key] = value
        try:
            self._journal.append(record)
        except (ReproError, OSError):
            return None
        return jid

    def _journal_outcome(self, jid, result) -> None:
        if jid is None or self._journal is None:
            return
        status = result.get("status") if isinstance(result, dict) else None
        with contextlib.suppress(ReproError, OSError):
            self._journal.append({
                "type": "response", "jid": jid,
                "status": 200 if status is None else status,
            })

    async def _replay_backlog(self, backlog) -> None:
        """Re-execute every accepted-but-unanswered request from the
        journal; the service reports ready only once this drains.  A
        request that fails to replay is marked so it is never retried
        again — recovery must converge, not loop."""
        loop = asyncio.get_running_loop()
        try:
            for record in backlog:
                try:
                    request = parse_allocate_request(
                        dict(record, fault=None, fault_args={}),
                        self.config.default_deadline,
                        self.config.max_deadline,
                    )
                    await loop.run_in_executor(
                        self._executor, self._allocate_blocking,
                        request, self.config.max_deadline, None,
                    )
                    self._recovery["recovered"] += 1
                    outcome = "recovered"
                except asyncio.CancelledError:
                    raise
                except Exception:  # noqa: BLE001 — recovery must converge
                    self._recovery["recovery_failed"] += 1
                    outcome = "recovery-failed"
                with contextlib.suppress(ReproError, OSError):
                    self._journal.append({
                        "type": "response", "jid": record.get("jid"),
                        "status": outcome,
                    })
        finally:
            self._recovery_done = True
            self.events.emit(
                "journal-replay", phase="done",
                recovered=self._recovery["recovered"],
                failed=self._recovery["recovery_failed"])

    async def _execute(self, request, received: float,
                       trace_id: str = None) -> dict:
        """Layers 2 and 4: deadline budget and degrading execution."""
        fault_spec = None
        if request.fault is not None:
            try:
                fault_spec = self._resolve_fault(request)
            except RequestError as error:
                self.counters["bad_requests"] += 1
                return error_response(request.id, error.status, str(error))
        async with self._semaphore:
            self.hists["queue_wait"].record(
                max(time.monotonic() - received, 0.0))
            if fault_spec is not None and \
                    fault_spec.get("behavior") == "slow_request":
                # The injected stall burns this request's own deadline
                # budget, exactly like a slow parse or a cold pool would.
                await asyncio.sleep(fault_spec["delay"])
            remaining = request.deadline - (time.monotonic() - received)
            if remaining <= 0:
                self.counters["deadline_exceeded"] += 1
                self._breaker_call("record_failure")
                return error_response(
                    request.id, 504, "deadline exhausted while queued",
                    reason="deadline", deadline=request.deadline)
            loop = asyncio.get_running_loop()
            dispatched = time.monotonic()
            try:
                payload = await asyncio.wait_for(
                    loop.run_in_executor(
                        self._executor, self._allocate_blocking,
                        request, remaining, fault_spec, trace_id),
                    timeout=remaining * 1.5,
                )
            except asyncio.TimeoutError:
                self.counters["deadline_exceeded"] += 1
                self._breaker_call("record_failure")
                return error_response(
                    request.id, 504,
                    "deadline exceeded (backstop)", reason="deadline",
                    deadline=request.deadline)
            except RequestError as error:
                self.counters["bad_requests"] += 1
                return error_response(request.id, error.status, str(error))
            except ReproError as error:
                self.counters["failed"] += 1
                self._breaker_call("record_failure")
                return error_response(
                    request.id, 500, f"allocation failed: {error}",
                    reason="allocation", error_type=type(error).__name__)
            except Exception as error:  # noqa: BLE001 — server must answer
                self.counters["failed"] += 1
                self._breaker_call("record_failure")
                return error_response(
                    request.id, 500, f"internal error: {error!r}",
                    reason="internal", error_type=type(error).__name__)
            finally:
                self.hists["dispatch"].record(
                    max(time.monotonic() - dispatched, 0.0))
        if payload.get("degraded"):
            self.counters["degraded"] += 1
            # The answer is correct (spill-everything) but the backend
            # failed to produce the real one: that is a breaker failure.
            self._breaker_call("record_failure")
            self.events.emit(
                "degrade", trace_id=trace_id, id=request.id,
                failures=len(payload.get("failures", ())))
        else:
            self._breaker_call("record_success")
        self.counters["served"] += 1
        return response(request.id, **payload)

    # -- the blocking allocation (executor thread) ---------------------

    def _allocate_blocking(self, request, budget: float,
                           fault_spec, trace_id: str = None) -> dict:
        started = time.monotonic()
        tracer = None
        span = contextlib.nullcontext()
        if request.trace:
            tracer = Tracer()
            tracer.trace_id = trace_id
            span = tracer.span("service:request", cat="service",
                               trace_id=trace_id, method=request.method,
                               function=request.name)
        with span:
            payload = self._allocate_traced(request, budget, fault_spec,
                                            trace_id, tracer, started)
        # The trace is exported only after the request span closes, so
        # the spooled JSON always has balanced begin/end events.
        if tracer is not None:
            self._finish_trace(tracer, trace_id, payload)
        return payload

    def _allocate_traced(self, request, budget, fault_spec, trace_id,
                         tracer, started) -> dict:
        module = self._build_module(request)
        target = rt_pc()
        if request.int_regs != 16:
            target = target.with_int_regs(request.int_regs)
        if request.float_regs != 8:
            target = target.with_float_regs(request.float_regs)
        method = request.method
        kwargs = {
            "jobs": self.config.jobs,
            "policy": self.config.policy,
            "retries": self.config.retries,
        }
        if fault_spec is not None and "strategy" in fault_spec:
            method = fault_spec["strategy"]
            kwargs.update(fault_spec.get("extra", {}))
        if fault_spec is not None and \
                fault_spec.get("behavior") == "cache_corrupt":
            self._corrupt_disk_cache(fault_spec)
        if self.config.bundle_dir is not None:
            kwargs["bundle_dir"] = (
                pathlib.Path(self.config.bundle_dir)
                / f"request-{next(self._request_seq)}"
            )
        n_functions = max(1, len(module.functions))
        remaining = budget - (time.monotonic() - started)
        if remaining <= 0:
            raise RequestError("deadline exhausted during parse",
                               status=504)
        # An injected hang must not stall the request for the whole
        # budget: keep the pool's per-function watchdog tighter than the
        # request deadline so restarts happen *inside* the budget.
        kwargs.setdefault("timeout", max(0.05, remaining / n_functions))
        # The default path runs with no per-request tracer: a live
        # tracer disables the response cache (replays would drop worker
        # spans), and the service wants the cache.  A request opting in
        # with `"trace": true` pays exactly that — one cache bypass —
        # for a merged service → worker → repair trace.
        allocation = allocate_module(
            module, target, method, validate=request.validate,
            tracer=tracer, **kwargs,
        )
        degraded = [
            failure.as_dict() for failure in allocation.failures
        ]
        payload = {
            "name": module.name,
            "method": allocation.method,
            "assignment": flat_assignment(allocation),
            "stats": {
                name: {
                    "passes": result.stats.pass_count,
                    "registers_spilled": result.stats.registers_spilled,
                    "spill_cost": result.stats.spill_cost,
                }
                for name, result in sorted(allocation.results.items())
            },
            "elapsed": round(time.monotonic() - started, 6),
        }
        if degraded:
            payload["degraded"] = True
            payload["failures"] = degraded
        if allocation.parallel_fallback:
            payload["parallel_fallback"] = allocation.parallel_fallback
        return payload

    def _finish_trace(self, tracer, trace_id, payload) -> None:
        """Fold a traced request's tracer back into the service: absorb
        allocator counters for ``/metrics``, summarize repair rounds as
        an event, attach the Chrome trace to the reply, spool to
        ``trace_dir`` when configured."""
        for name, value in tracer.counters.items():
            self.allocator_counters[name] = (
                self.allocator_counters.get(name, 0) + value
            )
        rounds = sum(
            1 for event in tracer.events
            if event.get("ph") == "B" and event.get("name") == "repair-round"
        )
        repair = {
            name.split(".", 1)[1]: value
            for name, value in sorted(tracer.counters.items())
            if name.startswith("repair.")
        }
        if rounds or repair:
            self.events.emit("repair-rounds", trace_id=trace_id,
                             rounds=rounds, **repair)
        payload["trace"] = {
            "traceEvents": chrome_trace_events(tracer),
            "displayTimeUnit": "ms",
        }
        if self.config.trace_dir is not None:
            with contextlib.suppress(OSError):
                write_chrome_trace(
                    tracer,
                    pathlib.Path(self.config.trace_dir)
                    / f"trace-{trace_id}.json",
                )

    def _build_module(self, request):
        try:
            if request.source is not None:
                return compile_source(request.source, request.name,
                                      optimize=self.config.optimize)
            return decode_module(request.wire)
        except ReproError as error:
            raise RequestError(
                f"cannot build module: {error}") from error

    # -- fault injection (chaos harness) -------------------------------

    def _resolve_fault(self, request):
        """A chaos request named a registered fault: resolve it into a
        spec the execution path interprets.  Unknown names are 400s."""
        from repro.robustness.faults import FAULTS

        fault = FAULTS.get(request.fault)
        if fault is None or fault.kind not in ("service", "worker"):
            raise RequestError(
                f"unknown injectable fault {request.fault!r}")
        if fault.kind == "worker":
            strategy, extra = fault.inject(self._rng)
            return {"behavior": request.fault, "strategy": strategy,
                    "extra": dict(extra)}
        spec = dict(fault.inject(self._rng))
        spec.update(request.fault_args)
        spec["behavior"] = request.fault
        return spec

    def _corrupt_disk_cache(self, spec) -> None:
        """``cache_corrupt``: flip one byte in every live disk-cache
        entry and drop the memory tier, so this request replays the
        warm-start path against damaged files.  The verified read must
        quarantine them all and recompute — never serve the damage."""
        disk = RESPONSE_CACHE.disk
        if disk is None:
            return
        RESPONSE_CACHE.drop_memory()
        offset = int(spec.get("offset", 7))
        for path in disk.entry_paths():
            try:
                raw = bytearray(path.read_bytes())
            except OSError:
                continue
            if not raw:
                continue
            position = min(offset, len(raw) - 1)
            raw[position] ^= 0xFF
            with contextlib.suppress(OSError):
                path.write_bytes(bytes(raw))

    # -- observability -------------------------------------------------

    def service_section(self) -> dict:
        """The ``service`` section of the metrics document."""
        section = dict(self.counters)
        section["breaker"] = self.breaker.stats()
        section["accepting"] = self.accepting
        section["in_flight"] = self._admitted
        section["concurrency"] = self.config.concurrency
        section["queue_limit"] = self.config.queue_limit
        if self._started_at is not None:
            section["uptime"] = round(
                time.monotonic() - self._started_at, 3)
        cache = RESPONSE_CACHE.stats()
        section["response_cache"] = cache
        #: server-side latency summaries (p50/p95/p99, count, sum) per
        #: operation — the live-telemetry block; bench-diff never gates
        #: on these (the whole `service` section is a RUNTIME_SECTION).
        section["latency"] = {
            op: self.hists[op].summary() for op in sorted(self.hists)
        }
        if self.allocator_counters:
            section["allocator"] = dict(sorted(
                self.allocator_counters.items()))
        section["events_seq"] = self.events.last_seq
        if self.config.journal_path is not None:
            section["journal"] = dict(
                self._recovery,
                records=len(self._journal) if self._journal else 0,
                recovery_done=self._recovery_done,
            )
        return section

    def ready(self) -> bool:
        return (
            self.accepting
            and self._recovery_done
            and self.breaker.state != CircuitBreaker.OPEN
            and self._admitted
            < self.config.concurrency + self.config.queue_limit
        )

    # -- HTTP probes ---------------------------------------------------

    async def _handle_http(self, first_line: bytes, reader, writer) -> None:
        try:
            target = first_line.split()[1].decode("ascii", "replace")
        except IndexError:
            target = "/"
        path, _, query = target.partition("?")
        params = {}
        for part in query.split("&"):
            key, _, value = part.partition("=")
            if key:
                params[key] = value
        # Drain the (tiny) header block so the client's write succeeds.
        with contextlib.suppress(Exception):
            while True:
                header = await asyncio.wait_for(reader.readline(), 1.0)
                if header in (b"", b"\r\n", b"\n"):
                    break
        if path == "/healthz":
            writer.write(http_response(200, "ok\n"))
        elif path == "/readyz":
            if self.ready():
                writer.write(http_response(200, "ready\n"))
            else:
                writer.write(http_response(
                    503, {"ready": False,
                          "breaker": self.breaker.state,
                          "accepting": self.accepting,
                          "recovering": not self._recovery_done,
                          "in_flight": self._admitted}))
        elif path == "/metrics":
            if params.get("format") == "prom":
                writer.write(http_response(
                    200, self._prometheus_page(),
                    content_type=PROMETHEUS_CONTENT_TYPE))
            else:
                writer.write(http_response(
                    200, {"schema": "repro-metrics/1",
                          "service": self.service_section()}))
        elif path == "/events":
            writer.write(http_response(
                200, self._events_page(params),
                content_type="application/x-ndjson"))
        else:
            writer.write(http_response(404, f"no route {target}\n"))
        with contextlib.suppress(Exception):
            await writer.drain()

    def _prometheus_page(self) -> str:
        """``/metrics?format=prom``: the latency histograms as summary
        series plus every numeric service counter as a counter series."""
        counters = {
            "service": {
                key: value
                for key, value in self.service_section().items()
                if key != "latency"
            }
        }
        return prometheus_text(self.hists, counters, prefix="repro")

    def _events_page(self, params: dict) -> str:
        """``GET /events[?since=SEQ&limit=N&kind=K]`` as NDJSON."""

        def _int(name):
            try:
                return int(params[name])
            except (KeyError, ValueError):
                return None

        events = self.events.tail(
            limit=_int("limit"), since=_int("since"),
            kind=params.get("kind") or None)
        return self.events.to_ndjson(events)


def run_server(config: ServiceConfig, announce=None) -> int:
    """Blocking entry point for ``repro serve``: run until SIGTERM or
    SIGINT, drain, tear down pools, exit 0."""

    async def main() -> int:
        service = AllocationService(config)
        await service.start()
        if announce is not None:
            announce(service)
        stop_event = asyncio.Event()
        loop = asyncio.get_running_loop()
        import signal as signal_mod

        for signum in (signal_mod.SIGTERM, signal_mod.SIGINT):
            try:
                loop.add_signal_handler(signum, stop_event.set)
            except (NotImplementedError, RuntimeError):
                pass
        try:
            await service.serve_until(stop_event)
        finally:
            if service.accepting:
                await service.stop()
        return 0

    # Belt and braces: the asyncio handlers drain gracefully, and the
    # process-level teardown guarantees no warm worker survives even if
    # the loop never gets to run them.
    install_signal_teardown()
    try:
        return asyncio.run(main())
    except KeyboardInterrupt:
        shutdown_pools()
        return 0
