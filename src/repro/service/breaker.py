"""Circuit breaker for the allocation service.

The worker pool fails in bursts: a poisoned input, a wedged worker, or a
dying machine takes out request after request, and every one of those
requests pays the full timeout before its failure is even visible.  A
circuit breaker converts that slow bleed into a fast, explicit rejection:

* **closed** — normal operation; failures are counted, successes reset
  the count;
* **open** — ``threshold`` *consecutive* failures tripped the breaker;
  every request is rejected immediately (the service answers 503
  ``breaker_open``) until ``cooldown`` seconds have passed;
* **half-open** — the cooldown expired; exactly **one** trial request is
  admitted.  Success closes the breaker, failure re-opens it for another
  cooldown.  The transition fires ``on_half_open`` once — the service
  uses it to :meth:`~repro.regalloc.pool.WorkerPool.restart` the worker
  pool, so the trial runs on fresh processes rather than whatever state
  just failed five times in a row.

The clock is injectable so tests drive the state machine
deterministically; nothing here sleeps or spawns.
"""

from __future__ import annotations

import time

__all__ = ["CircuitBreaker"]


class CircuitBreaker:
    """Consecutive-failure circuit breaker with half-open probing."""

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half-open"

    def __init__(self, threshold: int = 5, cooldown: float = 5.0,
                 clock=time.monotonic, on_half_open=None):
        if threshold < 1:
            raise ValueError(f"threshold must be >= 1, got {threshold}")
        self.threshold = threshold
        self.cooldown = cooldown
        self._clock = clock
        self._on_half_open = on_half_open
        self.state = self.CLOSED
        self.consecutive_failures = 0
        #: times the breaker transitioned closed/half-open -> open.
        self.trips = 0
        #: requests rejected because the breaker was open.
        self.rejections = 0
        self._opened_at = 0.0
        self._trial_in_flight = False

    # -- state transitions ---------------------------------------------

    def _open(self) -> None:
        self.state = self.OPEN
        self.trips += 1
        self._opened_at = self._clock()
        self._trial_in_flight = False

    def allow(self) -> bool:
        """May a request proceed right now?

        In the open state the first call after the cooldown flips to
        half-open (firing ``on_half_open``) and admits one trial; every
        other rejected call is counted on :attr:`rejections`.
        """
        if self.state == self.CLOSED:
            return True
        if self.state == self.OPEN:
            if self._clock() - self._opened_at >= self.cooldown:
                self.state = self.HALF_OPEN
                self._trial_in_flight = True
                if self._on_half_open is not None:
                    self._on_half_open()
                return True
            self.rejections += 1
            return False
        # HALF_OPEN: exactly one trial at a time.
        if self._trial_in_flight:
            self.rejections += 1
            return False
        self._trial_in_flight = True
        return True

    def record_success(self) -> None:
        self.consecutive_failures = 0
        if self.state != self.CLOSED:
            self.state = self.CLOSED
        self._trial_in_flight = False

    def record_failure(self) -> None:
        self.consecutive_failures += 1
        if self.state == self.HALF_OPEN:
            self._open()
        elif self.state == self.CLOSED and \
                self.consecutive_failures >= self.threshold:
            self._open()

    # -- introspection -------------------------------------------------

    def stats(self) -> dict:
        return {
            "state": self.state,
            "threshold": self.threshold,
            "cooldown": self.cooldown,
            "consecutive_failures": self.consecutive_failures,
            "trips": self.trips,
            "rejections": self.rejections,
        }

    def __repr__(self) -> str:
        return (
            f"CircuitBreaker({self.state}, "
            f"{self.consecutive_failures}/{self.threshold} failures, "
            f"{self.trips} trips)"
        )
