"""The allocation service's wire protocol.

One TCP port, two dialects, chosen per connection by the first bytes:

* **NDJSON requests** — each line is one JSON object with an ``op``
  (``allocate``, ``stats``, ``ping``, ``shutdown``); each reply is one
  JSON line carrying the request's ``id``, an HTTP-style ``status``
  code, and the payload.  Line-delimited framing keeps the protocol
  streamable: a client may pipeline requests and read replies in order.
* **HTTP/1.0 probes** — a line starting with ``GET `` is treated as a
  minimal HTTP request for the operational endpoints ``/healthz``
  (liveness), ``/readyz`` (readiness: accepting, breaker not open,
  queue not full), ``/metrics`` (the repro-metrics/1 document with the
  ``service`` section, including latency-histogram summaries;
  ``?format=prom`` for Prometheus text exposition), and ``/events``
  (the bounded event ring as repro-events/1 NDJSON; ``?since=SEQ`` to
  resume a cursor).  The response is a complete HTTP/1.0 message and
  the connection closes — enough for curl, a load balancer, or a
  Kubernetes probe, with zero dependencies.

Status codes follow HTTP semantics so rejection classes are explicit
and machine-readable:

====  =======================================================
 200  allocated (possibly ``degraded: true`` under policy)
 400  malformed request (bad JSON, unknown op/method, bad field)
 403  fault injection requested but not enabled on this server
 429  shed — the admission queue is full
 500  internal failure (allocation raised and policy re-raised)
 503  not ready — circuit breaker open, or shutting down
 504  deadline exceeded before or during allocation
====  =======================================================

This module is pure data plumbing — parsing, validation, encoding — so
both the server and the chaos client speak exactly the same language
and the tests can exercise it without sockets.
"""

from __future__ import annotations

import json

from repro.errors import ReproError

__all__ = [
    "PROTOCOL_VERSION",
    "RequestError",
    "AllocateRequest",
    "encode_message",
    "decode_message",
    "response",
    "error_response",
    "flat_assignment",
    "http_response",
]

#: Bumped on any incompatible message-shape change; echoed by ``ping``.
PROTOCOL_VERSION = 1

#: Allocation methods a request may name.  Strategy *objects* (including
#: the chaos faults' crashing/hanging allocators) are server-internal
#: and never travel over the wire.
KNOWN_METHODS = ("briggs", "chaitin", "briggs-degree", "spill-all",
                 "repair")

KNOWN_OPS = ("allocate", "stats", "ping", "shutdown")


class RequestError(ReproError):
    """A malformed or inadmissible request; carries the status to answer
    with (400 unless the constructor says otherwise)."""

    def __init__(self, message, status: int = 400, **context):
        super().__init__(message, context=context or None)
        self.status = status


# ----------------------------------------------------------------------
# Framing
# ----------------------------------------------------------------------


def encode_message(message: dict) -> bytes:
    """One message as one compact JSON line."""
    return (json.dumps(message, sort_keys=True,
                       separators=(",", ":")) + "\n").encode("utf-8")


def decode_message(line) -> dict:
    """Parse one request line; raises :class:`RequestError` (400) on
    anything that is not a JSON object with a known ``op``."""
    if isinstance(line, bytes):
        try:
            line = line.decode("utf-8")
        except UnicodeDecodeError:
            raise RequestError("request line is not valid UTF-8") from None
    try:
        message = json.loads(line)
    except json.JSONDecodeError as error:
        raise RequestError(f"request is not valid JSON: {error}") from None
    if not isinstance(message, dict):
        raise RequestError("request must be a JSON object")
    op = message.get("op", "allocate")
    if op not in KNOWN_OPS:
        known = ", ".join(KNOWN_OPS)
        raise RequestError(f"unknown op {op!r} (known: {known})")
    message["op"] = op
    return message


# ----------------------------------------------------------------------
# Allocate-request validation
# ----------------------------------------------------------------------


class AllocateRequest:
    """One validated ``allocate`` request, ready for the server."""

    __slots__ = ("id", "source", "wire", "name", "method", "int_regs",
                 "float_regs", "deadline", "validate", "trace", "fault",
                 "fault_args")

    def __init__(self, id, source, wire, name, method, int_regs,
                 float_regs, deadline, validate, fault, fault_args,
                 trace=False):
        self.id = id
        self.source = source
        self.wire = wire
        self.name = name
        self.method = method
        self.int_regs = int_regs
        self.float_regs = float_regs
        self.deadline = deadline
        self.validate = validate
        #: ``"trace": true`` — allocate under a live per-request tracer
        #: and return the merged Chrome trace in the response.  Opt-in
        #: because a live tracer bypasses the response cache.
        self.trace = trace
        #: chaos-only: a registered service/worker fault to inject.
        self.fault = fault
        self.fault_args = fault_args


def _positive_number(message, field, default, maximum=None):
    value = message.get(field, default)
    if value is None:
        # An explicit JSON null means "no preference" — same as absent.
        # Never hand None back: the server does arithmetic on this.
        value = default
    if not isinstance(value, (int, float)) or isinstance(value, bool) \
            or value <= 0:
        raise RequestError(f"{field!r} must be a positive number, "
                           f"got {value!r}")
    if maximum is not None:
        value = min(float(value), maximum)
    return float(value)


def _positive_int(message, field, default):
    value = message.get(field, default)
    if not isinstance(value, int) or isinstance(value, bool) or value < 1:
        raise RequestError(f"{field!r} must be a positive integer, "
                           f"got {value!r}")
    return value


def parse_allocate_request(message: dict, default_deadline: float,
                           max_deadline: float) -> AllocateRequest:
    """Validate one decoded ``allocate`` message.  Raises
    :class:`RequestError` (400) on any bad field; deadlines are clamped
    to ``max_deadline`` rather than rejected."""
    source = message.get("source")
    wire = message.get("wire")
    if (source is None) == (wire is None):
        raise RequestError(
            "exactly one of 'source' (mini-FORTRAN text) or 'wire' "
            "(repro.ir.wire module text) is required"
        )
    body = source if source is not None else wire
    if not isinstance(body, str) or not body.strip():
        raise RequestError("'source'/'wire' must be a non-empty string")
    method = message.get("method", "briggs")
    if method not in KNOWN_METHODS:
        known = ", ".join(KNOWN_METHODS)
        raise RequestError(f"unknown method {method!r} (known: {known})")
    name = message.get("name", "request")
    if not isinstance(name, str) or not name.isidentifier():
        raise RequestError(f"'name' must be an identifier, got {name!r}")
    fault = message.get("fault")
    if fault is not None and not isinstance(fault, str):
        raise RequestError(f"'fault' must be a fault name, got {fault!r}")
    fault_args = message.get("fault_args", {})
    if not isinstance(fault_args, dict):
        raise RequestError("'fault_args' must be an object")
    return AllocateRequest(
        id=message.get("id"),
        source=source,
        wire=wire,
        name=name,
        method=method,
        int_regs=_positive_int(message, "int_regs", 16),
        float_regs=_positive_int(message, "float_regs", 8),
        deadline=_positive_number(message, "deadline", default_deadline,
                                  maximum=max_deadline),
        validate=bool(message.get("validate", False)),
        trace=bool(message.get("trace", False)),
        fault=fault,
        fault_args=fault_args,
    )


# ----------------------------------------------------------------------
# Responses
# ----------------------------------------------------------------------


def response(request_id, status: int = 200, **payload) -> dict:
    message = {"id": request_id, "status": status}
    message.update(payload)
    return message


def error_response(request_id, status: int, error: str, **payload) -> dict:
    return response(request_id, status, error=error, **payload)


def flat_assignment(allocation) -> dict:
    """A module allocation's assignments as JSON-stable nested maps:
    ``{function: {"i4": 2, "f1": 0, ...}}`` with wire-style vreg tokens.
    The exact shape the chaos verifier diffs against serial references.
    """
    return {
        name: {
            f"{vreg.rclass.value}{vreg.id}": color
            for vreg, color in sorted(
                result.assignment.items(),
                key=lambda item: (item[0].rclass.value, item[0].id),
            )
        }
        for name, result in sorted(allocation.results.items())
    }


_HTTP_REASONS = {
    200: "OK",
    400: "Bad Request",
    403: "Forbidden",
    404: "Not Found",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}


def http_response(status: int, body, content_type: str = None) -> bytes:
    """A complete minimal HTTP/1.0 response.  ``body`` may be a dict
    (sent as JSON) or a string (sent as text)."""
    if isinstance(body, (dict, list)):
        encoded = (json.dumps(body, indent=2, sort_keys=True) + "\n")\
            .encode("utf-8")
        content_type = content_type or "application/json"
    else:
        encoded = str(body).encode("utf-8")
        content_type = content_type or "text/plain"
    reason = _HTTP_REASONS.get(status, "Unknown")
    head = (
        f"HTTP/1.0 {status} {reason}\r\n"
        f"Content-Type: {content_type}\r\n"
        f"Content-Length: {len(encoded)}\r\n"
        f"Connection: close\r\n"
        f"\r\n"
    ).encode("ascii")
    return head + encoded
