"""Hardened allocation-as-a-service (PR 7).

``repro serve`` exposes Build–Simplify–Select over a line-delimited
socket protocol with admission control, deadline budgets, a circuit
breaker over the warm worker pool, graceful degradation, and HTTP
probes; ``repro chaos`` replays a seeded fault storm against a live
server and asserts no wrong answers, no leaked workers, and bounded
tail latency.  See ``docs/SERVICE.md``.
"""

from repro.service.breaker import CircuitBreaker
from repro.service.protocol import (
    PROTOCOL_VERSION,
    RequestError,
    decode_message,
    encode_message,
    flat_assignment,
)
from repro.service.server import AllocationService, ServiceConfig, run_server

__all__ = [
    "AllocationService",
    "ServiceConfig",
    "CircuitBreaker",
    "RequestError",
    "PROTOCOL_VERSION",
    "decode_message",
    "encode_message",
    "flat_assignment",
    "run_server",
]
