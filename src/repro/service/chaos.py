"""Request-level chaos harness: ``repro chaos``.

The PR-2 fault registry proves each failure mode is handled *in
isolation*; this module proves the **service** survives them *under
load*: a seeded stream of allocation requests is replayed against a live
:class:`~repro.service.server.AllocationService` while faults from the
registry fire probabilistically, and three properties are asserted:

1. **No wrong answers.**  Every 200 response is diffed bit-for-bit
   against a serially computed reference — the requested method's
   reference for clean responses, the spill-all reference for degraded
   ones (that is what PR-2's degrade policy promises).  A 5xx/429 is an
   acceptable *refusal*; a wrong assignment never is.
2. **No leaked workers.**  After the run drains and the server stops,
   zero pool worker processes may be alive.
3. **Bounded tail latency.**  With the breaker shedding fast, p99 of
   *answered* requests must stay under a budget proportional to the
   request deadline — chaos may slow the service down, not wedge it.
4. **Honest telemetry.**  After the storm the harness scrapes the
   server's own ``/metrics`` and cross-checks the server-side e2e
   histogram p99 against the client-side sample; gross disagreement
   (beyond the histogram's bucket resolution with generous slack)
   means the production telemetry is lying and fails the run.

The harness runs everything in one process (server on a real localhost
socket, clients as asyncio tasks) so it is deterministic under a seed
and cheap enough for CI.
"""

from __future__ import annotations

import asyncio
import os
import pathlib
import random
import time

from repro.frontend import compile_source
from repro.machine import rt_pc
from repro.observability.hist import HIST_BASE
from repro.regalloc import allocate_module
from repro.regalloc.pool import active_pools
import json

from repro.service import protocol
from repro.service.protocol import encode_message
from repro.service.server import AllocationService, ServiceConfig

__all__ = ["ChaosReport", "run_chaos", "request_over_socket",
           "scrape_metrics", "CHAOS_WORKLOADS", "probe_service_fault"]

#: Small named programs the request stream draws from.  Two of them
#: spill on the default chaos target so degraded responses actually
#: differ from clean ones.
CHAOS_WORKLOADS = {
    "straightline": (
        "program straightline\n"
        "integer a, b, c, d\n"
        "a = 1\n"
        "b = 2\n"
        "c = a + b\n"
        "d = c * b\n"
        "print d\n"
        "end\n"
    ),
    "pressure": (
        "program pressure\n"
        "integer a1, a2, a3, a4, a5, a6, a7, a8, total\n"
        "a1 = 1\n"
        "a2 = 2\n"
        "a3 = 3\n"
        "a4 = 4\n"
        "a5 = 5\n"
        "a6 = 6\n"
        "a7 = 7\n"
        "a8 = 8\n"
        "total = a1 + a2 + a3 + a4 + a5 + a6 + a7 + a8\n"
        "print total\n"
        "end\n"
    ),
    "calls": (
        "subroutine leaf(n)\n"
        "end\n"
        "program calls\n"
        "integer m, x, y, z\n"
        "m = 41\n"
        "x = m + 1\n"
        "y = x * 2\n"
        "call leaf(m)\n"
        "z = x + y + m\n"
        "print z\n"
        "end\n"
    ),
    "loopy": (
        "program loopy\n"
        "integer i, acc, step\n"
        "acc = 0\n"
        "step = 3\n"
        "do i = 1, 10\n"
        "acc = acc + step\n"
        "end do\n"
        "print acc\n"
        "end\n"
    ),
}

#: Faults the chaos stream may inject per request, with default rates.
DEFAULT_FAULT_RATES = {
    "worker_crash": 0.15,
    "worker_hang": 0.0,       # opt-in: slow even when handled correctly
    "slow_request": 0.15,
    "cache_corrupt": 0.1,
    "client_disconnect": 0.1,
}


class ChaosReport:
    """Everything one chaos run learned, with the pass/fail verdict."""

    def __init__(self):
        self.requests = 0
        self.served = 0
        self.degraded = 0
        self.rejected = 0          # 429/503/504 — allowed refusals
        self.disconnected = 0      # client_disconnect injections
        self.wrong_answers = []    # (request id, explanation)
        self.errors = []           # unexpected statuses / protocol breaks
        self.latencies = []        # seconds, answered requests only
        self.injected = {}         # fault name -> count
        self.leaked_workers = []
        self.service = {}          # final service metrics section
        #: the server's own latency-histogram summaries, scraped from
        #: ``/metrics`` right after the storm drains (before recovery
        #: traffic) so the population matches ``latencies``.
        self.server_latency = {}
        self.duration = 0.0
        #: the exact storm parameters (requests, seed, fault rates, …)
        #: — enough to replay this run bit-for-bit.
        self.storm = {}

    @property
    def p99(self) -> float:
        if not self.latencies:
            return 0.0
        ordered = sorted(self.latencies)
        return ordered[min(len(ordered) - 1,
                           int(0.99 * len(ordered)))]

    @property
    def server_p99(self) -> float:
        """The server's own e2e p99 as its histogram saw it (0.0 when
        the ``/metrics`` scrape failed or recorded nothing)."""
        summary = (self.server_latency or {}).get("e2e") or {}
        value = summary.get("p99")
        return float(value) if isinstance(value, (int, float)) else 0.0

    @property
    def ok(self) -> bool:
        return not self.wrong_answers and not self.errors \
            and not self.leaked_workers

    def as_dict(self) -> dict:
        return {
            "requests": self.requests,
            "served": self.served,
            "degraded": self.degraded,
            "rejected": self.rejected,
            "disconnected": self.disconnected,
            "wrong_answers": self.wrong_answers,
            "errors": self.errors,
            "injected": dict(sorted(self.injected.items())),
            "p99": round(self.p99, 4),
            "server_p99": round(self.server_p99, 4),
            "server_latency": self.server_latency,
            "duration": round(self.duration, 3),
            "leaked_workers": self.leaked_workers,
            "service": self.service,
            "storm": self.storm,
            "ok": self.ok,
        }

    def summary(self) -> str:
        verdict = "OK" if self.ok else "FAILED"
        injected = ", ".join(
            f"{name}×{count}"
            for name, count in sorted(self.injected.items())
        ) or "none"
        lines = [
            f"chaos {verdict}: {self.requests} requests in "
            f"{self.duration:.1f}s — {self.served} served "
            f"({self.degraded} degraded), {self.rejected} rejected, "
            f"{self.disconnected} disconnects, p99 {self.p99 * 1000:.0f}ms "
            f"(server-side {self.server_p99 * 1000:.0f}ms)",
            f"  injected: {injected}",
        ]
        for request_id, why in self.wrong_answers:
            lines.append(f"  WRONG ANSWER {request_id}: {why}")
        for why in self.errors:
            lines.append(f"  ERROR: {why}")
        if self.leaked_workers:
            lines.append(f"  LEAKED WORKERS: {self.leaked_workers}")
        return "\n".join(lines)


# ----------------------------------------------------------------------
# Client side
# ----------------------------------------------------------------------


async def request_over_socket(host, port, message: dict,
                              timeout: float = 30.0,
                              disconnect_after: float = None) -> dict | None:
    """Send one NDJSON request, return the decoded reply.

    ``disconnect_after`` simulates a client that hangs up mid-request
    (the ``client_disconnect`` fault): the socket is torn down after
    that many seconds and ``None`` is returned — the *server's* health
    afterwards is the property under test.
    """
    from repro.service.server import _LINE_LIMIT

    reader, writer = await asyncio.open_connection(host, port,
                                                   limit=_LINE_LIMIT)
    try:
        writer.write(encode_message(message))
        await writer.drain()
        if disconnect_after is not None:
            await asyncio.sleep(disconnect_after)
            return None
        line = await asyncio.wait_for(reader.readline(), timeout)
        if not line:
            return None
        return json.loads(line)
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError, OSError):
            pass


async def scrape_metrics(host, port, timeout: float = 5.0) -> dict:
    """One HTTP/1.0 ``GET /metrics`` against a live server; returns the
    decoded repro-metrics/1 document.  Raises ``ValueError`` on a
    non-200 answer or an unparsable body, ``OSError``/``TimeoutError``
    on transport trouble — callers decide how loud to be."""
    reader, writer = await asyncio.open_connection(host, port)
    try:
        writer.write(b"GET /metrics HTTP/1.0\r\n\r\n")
        await writer.drain()
        raw = await asyncio.wait_for(reader.read(), timeout)
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError, OSError):
            pass
    head, _, body = raw.partition(b"\r\n\r\n")
    status_line = head.split(b"\r\n", 1)[0].decode("ascii", "replace")
    if " 200 " not in status_line:
        raise ValueError(f"/metrics answered {status_line!r}")
    return json.loads(body)


#: Quantile agreement is only asserted once both sides have a
#: statistically meaningful sample.
_P99_MIN_SAMPLES = 8
#: Gross-divergence gate for *every* storm: the log-histogram's bucket
#: resolution is HIST_BASE (~1.19x); two buckets of slop either way
#: plus fixed slack leaves room for queueing skew between the client's
#: and the server's measurement points, while still catching a
#: histogram that is off by an order of magnitude.
_P99_GROSS_RATIO = HIST_BASE ** 4
_P99_GROSS_SLACK = 0.05


def _cross_validate_p99(report: "ChaosReport") -> None:
    """Property 4: the p99 an operator would read off ``/metrics`` must
    agree with the p99 the clients actually experienced."""
    summary = (report.server_latency or {}).get("e2e") or {}
    if not summary:
        report.errors.append(
            "/metrics reported no e2e latency histogram — server-side "
            "telemetry is missing")
        return
    if summary.get("count", 0) < _P99_MIN_SAMPLES \
            or len(report.latencies) < _P99_MIN_SAMPLES:
        return
    server_p99 = report.server_p99
    client_p99 = report.p99
    if report.injected:
        # Under injected faults the client legitimately waits on
        # requests the server never answers (hung workers, shed
        # retries, disconnects), so client p99 may exceed server p99
        # by any amount.  The reverse direction stays suspicious in
        # every storm: the server claiming a worse tail than any
        # client experienced means the histogram is lying.
        if server_p99 > client_p99 * _P99_GROSS_RATIO + _P99_GROSS_SLACK:
            report.errors.append(
                f"server-side p99 {server_p99 * 1000:.0f}ms exceeds "
                f"client-side p99 {client_p99 * 1000:.0f}ms "
                f"(tolerance x{_P99_GROSS_RATIO:.2f} + "
                f"{_P99_GROSS_SLACK * 1000:.0f}ms)")
        return
    low, high = sorted((server_p99, client_p99))
    if high > low * _P99_GROSS_RATIO + _P99_GROSS_SLACK:
        report.errors.append(
            f"server-side p99 {server_p99 * 1000:.0f}ms disagrees "
            f"grossly with client-side p99 {client_p99 * 1000:.0f}ms "
            f"(tolerance x{_P99_GROSS_RATIO:.2f} + "
            f"{_P99_GROSS_SLACK * 1000:.0f}ms)")


# ----------------------------------------------------------------------
# Serial references
# ----------------------------------------------------------------------


class _ReferenceBank:
    """Serial, pool-free reference assignments, computed lazily once per
    (workload, method) and shared by every verification."""

    def __init__(self, target):
        self.target = target
        self._cache = {}

    def flat(self, workload: str, method: str) -> dict:
        key = (workload, method)
        if key not in self._cache:
            module = compile_source(CHAOS_WORKLOADS[workload], workload)
            allocation = allocate_module(
                module, self.target, method, jobs=1, cache=False,
            )
            self._cache[key] = protocol.flat_assignment(allocation)
        return self._cache[key]


def _verify_response(reply, workload, method, references, report):
    """Rule table: which statuses are acceptable, and what each 200 must
    match bit-for-bit."""
    status = reply.get("status")
    request_id = reply.get("id")
    if status == 200:
        report.served += 1
        expect_method = method
        if reply.get("degraded"):
            report.degraded += 1
            # Degraded functions fall back to spill-all; a partially
            # degraded module mixes methods, so check per function.
            got = reply.get("assignment", {})
            want_primary = references.flat(workload, method)
            want_naive = references.flat(workload, "spill-all")
            for fn, assignment in got.items():
                if assignment != want_primary.get(fn) and \
                        assignment != want_naive.get(fn):
                    report.wrong_answers.append((
                        request_id,
                        f"{workload}/{fn} matches neither the {method} "
                        f"reference nor the spill-all degradation",
                    ))
            return
        want = references.flat(workload, expect_method)
        if reply.get("assignment") != want:
            report.wrong_answers.append((
                request_id,
                f"{workload} ({method}) differs from the serial "
                f"reference assignment",
            ))
    elif status in (429, 503, 504):
        report.rejected += 1
    else:
        report.errors.append(
            f"request {request_id}: unexpected status {status}: "
            f"{reply.get('error')}"
        )


# ----------------------------------------------------------------------
# The harness
# ----------------------------------------------------------------------


def run_chaos(requests: int = 40, seed: int = 0, fault_rates=None,
              concurrency: int = 4, deadline: float = 10.0,
              config: ServiceConfig = None, progress=None,
              workloads=None, bundle_dir=None) -> ChaosReport:
    """Replay a seeded request stream against a live server under fault
    injection; return the :class:`ChaosReport` (check ``report.ok``).

    ``bundle_dir`` (with the default config) makes the server write a
    crash bundle under ``bundle_dir/request-<n>/`` for every degraded
    function — the artifact CI uploads when a chaos run goes red.
    """
    rates = dict(DEFAULT_FAULT_RATES)
    if fault_rates is not None:
        rates.update(fault_rates)
    rng = random.Random(seed)
    if config is None:
        import tempfile

        config = ServiceConfig(
            concurrency=2, queue_limit=4, jobs=2,
            default_deadline=deadline, max_deadline=max(deadline, 30.0),
            breaker_threshold=4, breaker_cooldown=0.2,
            bundle_dir=bundle_dir,
            # A live disk tier so ``cache_corrupt`` has files to damage.
            cache_dir=tempfile.mkdtemp(prefix="repro-chaos-cache-"),
        )
    # Fault injection is the harness's entire purpose; unconditionally
    # opt the server in, even on a caller-supplied config.
    config.allow_faults = True
    report = ChaosReport()
    references = _ReferenceBank(rt_pc())
    methods = ("briggs", "chaitin", "briggs-degree")
    pool = sorted(workloads) if workloads else sorted(CHAOS_WORKLOADS)

    report.storm = {
        "format": 1,
        "requests": requests,
        "seed": seed,
        "fault_rates": dict(sorted(rates.items())),
        "concurrency": concurrency,
        "deadline": deadline,
        "workloads": pool if workloads else None,
    }
    if bundle_dir is not None:
        # The storm manifest rides along with the crash bundles, so a
        # CI artifact is replayable with `repro chaos --replay <dir>`.
        directory = pathlib.Path(bundle_dir)
        directory.mkdir(parents=True, exist_ok=True)
        (directory / "storm.json").write_text(
            json.dumps(report.storm, indent=2, sort_keys=True) + "\n"
        )

    # The whole stream is drawn up front from the seed so scheduling
    # nondeterminism cannot change *what* is injected, only when.
    plan = []
    for index in range(requests):
        workload = rng.choice(pool)
        method = rng.choice(methods)
        fault = None
        roll = rng.random()
        floor = 0.0
        for name, rate in sorted(rates.items()):
            if rate <= 0:
                continue
            if floor <= roll < floor + rate:
                fault = name
                break
            floor += rate
        plan.append((index, workload, method, fault))

    async def one_request(service, index, workload, method, fault):
        message = {
            "op": "allocate",
            "id": index,
            "source": CHAOS_WORKLOADS[workload],
            "name": workload,
            "method": method,
            "deadline": deadline,
        }
        disconnect_after = None
        if fault == "client_disconnect":
            disconnect_after = rng.uniform(0.0, 0.05)
        elif fault is not None:
            message["fault"] = fault
        report.requests += 1
        if fault is not None:
            report.injected[fault] = report.injected.get(fault, 0) + 1
        began = time.monotonic()
        try:
            reply = await request_over_socket(
                "127.0.0.1", service.port, message,
                timeout=deadline * 3,
                disconnect_after=disconnect_after,
            )
        except (ConnectionResetError, BrokenPipeError, OSError,
                asyncio.TimeoutError) as error:
            report.errors.append(
                f"request {index}: transport failed: {error!r}")
            return
        if disconnect_after is not None:
            report.disconnected += 1
            return
        if reply is None:
            report.errors.append(
                f"request {index}: connection closed without a reply")
            return
        report.latencies.append(time.monotonic() - began)
        _verify_response(reply, workload, method, references, report)
        if progress is not None:
            progress(index, reply)

    async def main():
        service = AllocationService(config)
        await service.start()
        try:
            gate = asyncio.Semaphore(concurrency)

            async def gated(entry):
                async with gate:
                    await one_request(service, *entry)

            began = time.monotonic()
            await asyncio.gather(*(gated(entry) for entry in plan))
            report.duration = time.monotonic() - began
            # Property 4: scrape the server's own histograms *now*,
            # before recovery traffic dilutes the e2e population, and
            # cross-check its p99 against the client-side sample.
            try:
                metrics = await scrape_metrics("127.0.0.1", service.port)
            except (OSError, ValueError, asyncio.TimeoutError) as error:
                report.errors.append(
                    f"/metrics scrape failed after the storm: {error!r}")
                metrics = {}
            report.server_latency = (
                metrics.get("service", {}).get("latency", {}) or {}
            )
            _cross_validate_p99(report)
            # The server must still be *healthy* after the storm: one
            # clean request has to succeed (possibly after the breaker's
            # cooldown admits its trial).
            recovery_deadline = time.monotonic() + max(10.0, deadline)
            while True:
                reply = await request_over_socket(
                    "127.0.0.1", service.port,
                    {"op": "allocate", "id": "recovery",
                     "source": CHAOS_WORKLOADS["straightline"],
                     "name": "straightline", "method": "briggs",
                     "deadline": deadline},
                    timeout=deadline * 3,
                )
                if reply is not None and reply.get("status") == 200 \
                        and not reply.get("degraded"):
                    _verify_response(reply, "straightline", "briggs",
                                     references, report)
                    break
                if time.monotonic() > recovery_deadline:
                    report.errors.append(
                        "server never recovered after the fault storm "
                        f"(last reply: {reply})")
                    break
                await asyncio.sleep(0.1)
            report.service = service.service_section()
        finally:
            worker_pids.extend(
                pid for pool in active_pools()
                for pid in pool.worker_pids()
            )
            await service.stop()

    worker_pids: list = []
    asyncio.run(main())
    # Property 2: every worker the run ever spawned is gone.
    report.leaked_workers = [
        pid for pid in worker_pids if not _process_gone(pid)
    ]
    return report


def replay_command(storm: dict) -> str:
    """The exact ``repro chaos`` invocation that reproduces ``storm``.

    Every effective parameter is spelled out — including each nonzero
    fault rate — so the command is self-contained and does not depend
    on the default mix staying what it is today.
    """
    parts = [
        "repro chaos",
        f"--requests {storm['requests']}",
        f"--seed {storm['seed']}",
        f"--concurrency {storm['concurrency']}",
        f"--deadline {storm['deadline']:g}",
    ]
    for name, rate in sorted(storm.get("fault_rates", {}).items()):
        if rate > 0:
            parts.append(f"--fault {name}={rate:g}")
    return " ".join(parts)


def load_storm_manifest(bundle) -> dict:
    """The storm manifest from a chaos bundle directory (or the
    ``storm.json`` file itself); raises ``ReproError`` when the bundle
    has none or it is unreadable."""
    from repro.errors import ReproError

    path = pathlib.Path(bundle)
    if path.is_dir():
        path = path / "storm.json"
    try:
        manifest = json.loads(path.read_text())
    except FileNotFoundError:
        raise ReproError(
            f"no storm manifest at {path} — was the original run given "
            "--bundle-dir?"
        )
    except (OSError, ValueError) as error:
        raise ReproError(f"unreadable storm manifest {path}: {error}")
    if not isinstance(manifest, dict) or "seed" not in manifest:
        raise ReproError(f"malformed storm manifest {path}")
    return manifest


def _process_gone(pid: int, deadline: float = 5.0) -> bool:
    """True once ``pid`` no longer exists (reaped children count)."""
    end = time.monotonic() + deadline
    while time.monotonic() < end:
        try:
            os.kill(pid, 0)
        except ProcessLookupError:
            return True
        except PermissionError:
            return False
        try:
            done, _ = os.waitpid(pid, os.WNOHANG)
            if done == pid:
                return True
        except ChildProcessError:
            # Already reaped by the pool's join; os.kill above is racy
            # against pid reuse, so trust the reap.
            return True
        time.sleep(0.05)
    return False


# ----------------------------------------------------------------------
# Registry bridge: lets `probe_fault`/`repro verify --inject` exercise
# the service-kind faults the same way it exercises all the others.
# ----------------------------------------------------------------------


def probe_service_fault(fault, seed: int):
    """Run one service-kind fault through a minimal single-request chaos
    harness; returns ``(injected, detected_by, degraded, failures,
    detail)`` for :class:`repro.robustness.faults.FaultProbe`."""
    import tempfile

    rates = {name: 0.0 for name in DEFAULT_FAULT_RATES}
    rates[fault.name] = 1.0
    deadline = 0.6 if fault.name == "slow_request" else 8.0
    cache_dir = None
    if fault.name == "cache_corrupt":
        # The corruption targets the disk tier; give the probe one.
        cache_dir = tempfile.mkdtemp(prefix="repro-chaos-cache-")
    config = ServiceConfig(
        concurrency=1, queue_limit=2, jobs=2,
        default_deadline=deadline, max_deadline=30.0,
        breaker_threshold=10, breaker_cooldown=0.1,
        cache_dir=cache_dir,
    )
    # cache_corrupt needs the cacheable path: multi-function workloads
    # only, and enough requests that corruption hits populated entries.
    workloads = ("calls",) if fault.name == "cache_corrupt" else None
    report = run_chaos(
        requests=3 if fault.name == "cache_corrupt" else 2, seed=seed,
        fault_rates=rates, concurrency=1, deadline=deadline,
        config=config, workloads=workloads,
    )
    detected = []
    degraded = False
    if fault.name == "slow_request":
        # An injected stall longer than the deadline must surface as a
        # 504 rejection, not as a slow success.
        if report.rejected:
            detected.append("driver")
            degraded = True
    elif fault.name == "cache_corrupt":
        quarantined = (
            report.service.get("response_cache", {})
            .get("disk", {}).get("quarantined", 0)
        )
        # The fault only counts as handled when damage actually reached
        # the read path *and* every answer still matched the reference.
        if report.served and quarantined and not report.wrong_answers:
            degraded = True
            detected.append("driver")
        detail = f"{quarantined} entries quarantined"
        return (fault.description, detected, degraded and report.ok,
                report.rejected, detail)
    elif fault.name == "client_disconnect":
        if report.disconnected and report.ok:
            degraded = True
            detected.append("driver")
    detail = (
        f"{report.served} served, {report.rejected} rejected, "
        f"{report.disconnected} disconnected"
    )
    return (fault.description, detected, degraded and report.ok,
            report.rejected, detail)
