"""Live-variable analysis (backward, iterative, over int bitsets).

Bit ``i`` of a set refers to the virtual register with id ``i``.  Python
integers make unusually good bitsets here: union/intersection are single C
operations regardless of width, and the graphs the paper works with (a few
thousand live ranges) fit comfortably.

Exposes per-block ``live_in``/``live_out`` plus the ``use``/``def`` summary
sets, and an in-order walker that yields the live set *after* each
instruction — exactly the traversal the interference-graph builder needs.
"""

from __future__ import annotations

from repro.analysis.bitset import iter_bits, popcount
from repro.analysis.cfg import CFG
from repro.ir.function import Function

#: Re-exported kernels (historical home of these helpers; the
#: implementations live in :mod:`repro.analysis.bitset`).
bits = iter_bits
bit_count = popcount


class Liveness:
    """Fixed-point liveness for one function."""

    def __init__(self, function: Function, cfg: CFG | None = None):
        self.function = function
        self.cfg = cfg or CFG(function)
        #: id -> VReg for every register of the function, computed once and
        #: shared with the interference-graph builder.
        self.vreg_by_id: dict[int, object] = {v.id: v for v in function.vregs}
        #: upward-exposed uses per block.
        self.use: dict[str, int] = {}
        #: registers defined per block.
        self.defs: dict[str, int] = {}
        self.live_in: dict[str, int] = {}
        self.live_out: dict[str, int] = {}
        self._compute_local_sets()
        self._solve()

    def _compute_local_sets(self) -> None:
        for block in self.function.blocks:
            use_mask = 0
            def_mask = 0
            for instr in block.instrs:
                for u in instr.uses:
                    if not (def_mask >> u.id) & 1:
                        use_mask |= 1 << u.id
                for d in instr.defs:
                    def_mask |= 1 << d.id
            self.use[block.label] = use_mask
            self.defs[block.label] = def_mask

    def _solve(self) -> None:
        # live_in[b] = use[b] | (live_out[b] & ~def[b])
        # live_out[b] = union of live_in over successors.
        for block in self.function.blocks:
            self.live_in[block.label] = 0
            self.live_out[block.label] = 0
        order = self.cfg.postorder()  # good order for backward problems
        changed = True
        while changed:
            changed = False
            for block in order:
                out = 0
                for succ in self.cfg.succs[block.label]:
                    out |= self.live_in[succ]
                new_in = self.use[block.label] | (
                    out & ~self.defs[block.label]
                )
                if (
                    out != self.live_out[block.label]
                    or new_in != self.live_in[block.label]
                ):
                    self.live_out[block.label] = out
                    self.live_in[block.label] = new_in
                    changed = True

    # ------------------------------------------------------------------

    def live_after(self, block) -> list:
        """Walk ``block`` backward, yielding ``(index, instr, live_mask)``
        where ``live_mask`` is the live set immediately *after* the
        instruction at ``index``."""
        live = self.live_out[block.label]
        results = []
        for index in range(len(block.instrs) - 1, -1, -1):
            instr = block.instrs[index]
            results.append((index, instr, live))
            for d in instr.defs:
                live &= ~(1 << d.id)
            for u in instr.uses:
                live |= 1 << u.id
        results.reverse()
        return results

    def live_vregs_in(self, label: str) -> list:
        """Live-in registers of a block as VReg objects."""
        by_id = self.vreg_by_id
        return [by_id[i] for i in iter_bits(self.live_in[label])]

    def is_live_in(self, label: str, vreg) -> bool:
        return bool((self.live_in[label] >> vreg.id) & 1)

    def is_live_out(self, label: str, vreg) -> bool:
        return bool((self.live_out[label] >> vreg.id) & 1)

    def __repr__(self) -> str:
        return f"Liveness({self.function.name})"
