"""Dataflow and control-flow analyses feeding the register allocator.

* :mod:`repro.analysis.cfg` — predecessor/successor maps, traversal orders;
* :mod:`repro.analysis.dominance` — immediate dominators (Cooper–Harvey–
  Kennedy iterative algorithm) and dominator-tree queries;
* :mod:`repro.analysis.loops` — natural loops from back edges and the
  per-block nesting depth used to weight spill costs;
* :mod:`repro.analysis.bitset` — the shared O(popcount) mask-iteration
  and population-count kernels every bitset walk uses;
* :mod:`repro.analysis.liveness` — iterative backward liveness over int
  bitsets;
* :mod:`repro.analysis.defuse` — definition and use sites per register;
* :mod:`repro.analysis.webs` — du-chain webs: "finding and renumbering
  distinct live ranges" (paper §3.3's description of the build phase).
"""

from repro.analysis.bitset import bits_list, iter_bits, popcount
from repro.analysis.cfg import CFG
from repro.analysis.dominance import DominatorTree
from repro.analysis.loops import LoopInfo, annotate_loop_depths
from repro.analysis.liveness import Liveness
from repro.analysis.defuse import DefUse
from repro.analysis.webs import split_webs

__all__ = [
    "iter_bits",
    "bits_list",
    "popcount",
    "CFG",
    "DominatorTree",
    "LoopInfo",
    "annotate_loop_depths",
    "Liveness",
    "DefUse",
    "split_webs",
]
