"""Natural-loop detection and loop-nesting depth.

The spill-cost estimator weights each definition/use by ``10 ** depth`` of
its block (paper §2.1: costs are "weighted by the loop nesting depth of
each insertion point"), so depth is the one loop property the allocator
truly needs.  We also expose the loops themselves for tests and for the
workload-characterisation utilities.

A *natural loop* is found per back edge ``t -> h`` where ``h`` dominates
``t``: its body is ``h`` plus every block that reaches ``t`` without
passing through ``h``.  Loops sharing a header are merged.  Depth of a
block = number of distinct loop bodies containing it.
"""

from __future__ import annotations

from repro.analysis.cfg import CFG
from repro.analysis.dominance import DominatorTree
from repro.ir.function import Function


class Loop:
    """One natural loop: header label plus the set of body labels."""

    __slots__ = ("header", "body")

    def __init__(self, header: str, body: set):
        self.header = header
        self.body = body

    def __contains__(self, label: str) -> bool:
        return label in self.body

    def __len__(self) -> int:
        return len(self.body)

    def __repr__(self) -> str:
        return f"Loop(header={self.header}, {len(self.body)} blocks)"


class LoopInfo:
    """All natural loops of a function, with per-block nesting depth."""

    def __init__(self, function: Function, cfg: CFG | None = None):
        self.function = function
        cfg = cfg or CFG(function)
        dom = DominatorTree(cfg)

        reachable = {block.label for block in cfg.postorder()}
        back_edges = []
        for block in function.blocks:
            if block.label not in reachable:
                continue
            for target in block.successor_labels():
                if dom.dominates(function.block(target), block):
                    back_edges.append((block.label, target))

        by_header: dict[str, set] = {}
        for tail, header in back_edges:
            body = by_header.setdefault(header, {header})
            self._collect(cfg, header, tail, body)
        self.loops = [Loop(header, body) for header, body in by_header.items()]

        self.depth: dict[str, int] = {
            block.label: 0 for block in function.blocks
        }
        for loop in self.loops:
            for label in loop.body:
                self.depth[label] += 1

    @staticmethod
    def _collect(cfg: CFG, header: str, tail: str, body: set) -> None:
        """Blocks reaching ``tail`` without passing through ``header``."""
        stack = [tail]
        while stack:
            label = stack.pop()
            if label in body:
                continue
            body.add(label)
            stack.extend(cfg.preds[label])

    # ------------------------------------------------------------------

    def depth_of(self, label: str) -> int:
        return self.depth[label]

    def loops_containing(self, label: str) -> list:
        return [loop for loop in self.loops if label in loop]

    def max_depth(self) -> int:
        return max(self.depth.values(), default=0)

    def __repr__(self) -> str:
        return f"LoopInfo({self.function.name}, {len(self.loops)} loops)"


def annotate_loop_depths(function: Function, cfg: CFG | None = None) -> LoopInfo:
    """Compute loops and store each block's depth on ``block.loop_depth``."""
    info = LoopInfo(function, cfg)
    for block in function.blocks:
        block.loop_depth = info.depth[block.label]
    return info
