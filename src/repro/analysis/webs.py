"""Web construction: split each virtual register into its du-chain webs.

The paper's build phase begins by "finding and renumbering distinct live
ranges" (§3.3).  A FORTRAN variable reused in disjoint regions — the loop
index ``i`` of two separate loops, say — is *one* variable but *several*
independent live ranges; allocating them separately is what lets the copy
loop's indices in SVD get registers even when an ``i`` elsewhere spills.

A **web** is the transitive closure of def-use chains: a definition and a
use belong together when the def reaches the use; two defs belong together
when some use is reached by both.  We compute instruction-level reaching
definitions (bitsets over def sites, forward union dataflow), union the
sites with a union-find, and renumber: every web beyond a register's first
gets a fresh virtual register, with defs and uses rewritten in place.

Returns the number of extra webs created (0 means nothing was split).
"""

from __future__ import annotations

from repro.analysis.bitset import iter_bits
from repro.analysis.cfg import CFG
from repro.ir.function import Function


class _UnionFind:
    def __init__(self, size: int):
        self.parent = list(range(size))

    def find(self, x: int) -> int:
        root = x
        while self.parent[root] != root:
            root = self.parent[root]
        while self.parent[x] != root:  # path compression
            self.parent[x], x = root, self.parent[x]
        return root

    def union(self, a: int, b: int) -> None:
        ra, rb = self.find(a), self.find(b)
        if ra != rb:
            self.parent[max(ra, rb)] = min(ra, rb)


class _WebAnalysis:
    """Shared state for the two walks (union pass and rewrite pass)."""

    def __init__(self, function: Function):
        self.function = function
        # Enumerate definition sites.  Params define at a synthetic entry
        # site so every web has at least one definition.
        self.sites: list = []  # site id -> (vreg, label, index)
        self.site_id: dict = {}
        self.vreg_mask: dict = {}  # vreg -> bitmask over its def sites
        for param in function.params:
            self._add_site(param, "<entry>", -1)
        for block in function.blocks:
            for index, instr in enumerate(block.instrs):
                for d in instr.defs:
                    self._add_site(d, block.label, index)
        self.reach_in = self._solve_reaching()

    def _add_site(self, vreg, label: str, index: int) -> int:
        sid = len(self.sites)
        self.sites.append((vreg, label, index))
        self.site_id[(vreg, label, index)] = sid
        self.vreg_mask[vreg] = self.vreg_mask.get(vreg, 0) | (1 << sid)
        return sid

    def _block_gen_kill(self, block) -> tuple:
        gen = 0
        kill = 0
        for index, instr in enumerate(block.instrs):
            for d in instr.defs:
                mask = self.vreg_mask[d]
                gen &= ~mask
                gen |= 1 << self.site_id[(d, block.label, index)]
                kill |= mask
        return gen, kill

    def _solve_reaching(self) -> dict:
        function = self.function
        cfg = CFG(function)
        gen = {}
        kill = {}
        for block in function.blocks:
            gen[block.label], kill[block.label] = self._block_gen_kill(block)
        entry_mask = 0
        for param in function.params:
            entry_mask |= 1 << self.site_id[(param, "<entry>", -1)]
        reach_in = {block.label: 0 for block in function.blocks}
        reach_out = {block.label: 0 for block in function.blocks}
        # Simple fixpoint in reverse postorder.
        order = cfg.reverse_postorder()
        changed = True
        while changed:
            changed = False
            for block in order:
                if block is function.entry:
                    in_mask = entry_mask
                else:
                    in_mask = 0
                    for pred in cfg.preds[block.label]:
                        in_mask |= reach_out[pred]
                out_mask = gen[block.label] | (in_mask & ~kill[block.label])
                if (
                    in_mask != reach_in[block.label]
                    or out_mask != reach_out[block.label]
                ):
                    reach_in[block.label] = in_mask
                    reach_out[block.label] = out_mask
                    changed = True
        return reach_in

    # ------------------------------------------------------------------

    def walk(self, on_use, on_def) -> None:
        """Forward walk; ``on_use(instr, pos, vreg, reaching_mask)`` fires
        for each use occurrence with the defs of ``vreg`` reaching it, and
        ``on_def(instr, pos, vreg, site_id)`` for each definition."""
        for block in self.function.blocks:
            current = self.reach_in[block.label]
            for index, instr in enumerate(block.instrs):
                for pos, u in enumerate(instr.uses):
                    mask = self.vreg_mask.get(u, 0)
                    on_use(instr, pos, u, current & mask)
                for pos, d in enumerate(instr.defs):
                    sid = self.site_id[(d, block.label, index)]
                    current &= ~self.vreg_mask[d]
                    current |= 1 << sid
                    on_def(instr, pos, d, sid)


#: O(popcount) set-bit walk, shared with the rest of the analyses.
_mask_bits = iter_bits


def split_webs(function: Function) -> int:
    """Split every virtual register into webs, in place.

    Returns the number of new registers created.  Running it twice is a
    no-op the second time (the property tests rely on idempotence).
    """
    analysis = _WebAnalysis(function)
    if not analysis.sites:
        return 0
    uf = _UnionFind(len(analysis.sites))

    def union_pass_use(_instr, _pos, _vreg, reaching_mask):
        first = None
        for sid in _mask_bits(reaching_mask):
            if first is None:
                first = sid
            else:
                uf.union(first, sid)

    analysis.walk(union_pass_use, lambda *args: None)

    # Group def sites per register by web root.
    webs_of: dict = {}  # vreg -> {root}
    for sid, (vreg, _label, _index) in enumerate(analysis.sites):
        webs_of.setdefault(vreg, set()).add(uf.find(sid))

    replacement: dict = {}  # root -> VReg
    created = 0
    for vreg, roots in webs_of.items():
        if len(roots) == 1:
            continue
        ordered = sorted(roots)
        keep_root = ordered[0]
        if vreg in function.params:
            # The web fed by the incoming argument keeps the param register.
            entry_sid = analysis.site_id[(vreg, "<entry>", -1)]
            keep_root = uf.find(entry_sid)
        for root in ordered:
            if root == keep_root:
                replacement[root] = vreg
            else:
                replacement[root] = function.new_vreg(vreg.rclass, vreg.name)
                created += 1

    if not created:
        return 0

    def rewrite_use(instr, pos, vreg, reaching_mask):
        if not reaching_mask:
            return  # no reaching def (dead path); leave untouched
        root = uf.find(next(_mask_bits(reaching_mask)))
        new = replacement.get(root)
        if new is not None and new is not vreg:
            instr.uses[pos] = new

    def rewrite_def(instr, pos, vreg, sid):
        root = uf.find(sid)
        new = replacement.get(root)
        if new is not None and new is not vreg:
            instr.defs[pos] = new

    analysis.walk(rewrite_use, rewrite_def)
    return created
