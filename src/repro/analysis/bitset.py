"""Shared bitset kernels: O(popcount) iteration and population count.

Python integers are the repo's bitset representation (bit ``i`` = virtual
register ``i``, def site ``i``, graph node ``i`` ...).  Union/intersection
are single C operations, but *iterating* a mask is easy to get wrong: the
naive ``while mask: mask >>= 1`` walk costs O(highest set bit), which on a
function with thousands of registers means thousands of shift-and-test
steps to visit a handful of live values.

The kernels here cost O(popcount):

* ``iter_bits`` peels the lowest set bit with ``mask & -mask`` and finds
  its index with ``int.bit_length`` — one arbitrary-precision subtraction,
  one AND, one XOR per *set* bit, never per possible bit;
* ``popcount`` is ``int.bit_count`` where it exists (3.10+) and the
  ``bin(mask).count("1")`` idiom on 3.9.

Every mask walk in the allocator (liveness, webs, interference ``freeze``,
coalescing) goes through these.
"""

from __future__ import annotations

__all__ = ["iter_bits", "bits_list", "popcount"]


def iter_bits(mask: int):
    """Yield the indices of the set bits of ``mask``, ascending.

    O(popcount(mask)) big-int operations, independent of the width of the
    mask.  ``mask`` must be non-negative.
    """
    while mask:
        low = mask & -mask
        mask ^= low
        yield low.bit_length() - 1


def bits_list(mask: int) -> list:
    """The set bit indices of ``mask`` as a list (ascending)."""
    result = []
    while mask:
        low = mask & -mask
        mask ^= low
        result.append(low.bit_length() - 1)
    return result


if hasattr(int, "bit_count"):  # Python >= 3.10: a single CPython builtin

    def popcount(mask: int) -> int:
        """Number of set bits of ``mask``."""
        return mask.bit_count()

else:  # pragma: no cover - exercised only on Python 3.9

    def popcount(mask: int) -> int:
        """Number of set bits of ``mask`` (3.9 fallback)."""
        return bin(mask).count("1")
