"""Control-flow graph queries over a :class:`~repro.ir.function.Function`.

The IR stores control flow implicitly (branch targets are labels); this
module materialises predecessor/successor maps and the traversal orders the
dataflow analyses need.  A ``CFG`` is a snapshot: rebuild it after passes
that add or remove blocks or edges.
"""

from __future__ import annotations

from repro.ir.basicblock import Block
from repro.ir.function import Function


class CFG:
    """Predecessors, successors and orders for one function."""

    def __init__(self, function: Function):
        self.function = function
        self.succs: dict[str, list] = {}
        self.preds: dict[str, list] = {}
        for block in function.blocks:
            self.succs[block.label] = block.successor_labels()
            self.preds.setdefault(block.label, [])
        for label, targets in self.succs.items():
            for target in targets:
                self.preds[target].append(label)
        self._postorder: list | None = None

    # ------------------------------------------------------------------

    def successors(self, block: Block) -> list:
        return [self.function.block(l) for l in self.succs[block.label]]

    def predecessors(self, block: Block) -> list:
        return [self.function.block(l) for l in self.preds[block.label]]

    # ------------------------------------------------------------------

    def postorder(self) -> list:
        """Blocks in postorder from the entry (unreachable blocks excluded).

        Iterative DFS; successor order follows the branch target order so
        the traversal is deterministic.
        """
        if self._postorder is not None:
            return self._postorder
        visited: set = set()
        order: list = []
        # Stack holds (label, iterator-over-successors) pairs.
        entry = self.function.entry.label
        stack = [(entry, iter(self.succs[entry]))]
        visited.add(entry)
        while stack:
            label, successors = stack[-1]
            advanced = False
            for succ in successors:
                if succ not in visited:
                    visited.add(succ)
                    stack.append((succ, iter(self.succs[succ])))
                    advanced = True
                    break
            if not advanced:
                stack.pop()
                order.append(self.function.block(label))
        self._postorder = order
        return order

    def reverse_postorder(self) -> list:
        """Reverse postorder — the canonical forward-dataflow order."""
        return list(reversed(self.postorder()))

    def rpo_index(self) -> dict:
        """Map block label -> its reverse-postorder position."""
        return {
            block.label: index
            for index, block in enumerate(self.reverse_postorder())
        }

    def edge_count(self) -> int:
        return sum(len(targets) for targets in self.succs.values())

    def __repr__(self) -> str:
        return f"CFG({self.function.name}, {len(self.succs)} blocks)"
