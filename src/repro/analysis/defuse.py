"""Definition and use sites per virtual register.

A *site* is ``(block_label, instruction_index)``.  Parameters get a
synthetic definition site ``("<entry>", -1)`` so every register has at
least one definition, which keeps the web construction uniform.
"""

from __future__ import annotations

from repro.ir.function import Function

ENTRY_SITE = ("<entry>", -1)


class DefUse:
    """Def and use site lists for every virtual register of a function."""

    def __init__(self, function: Function):
        self.function = function
        self.def_sites: dict = {v: [] for v in function.vregs}
        self.use_sites: dict = {v: [] for v in function.vregs}
        for param in function.params:
            self.def_sites[param].append(ENTRY_SITE)
        for block in function.blocks:
            for index, instr in enumerate(block.instrs):
                for d in instr.defs:
                    self.def_sites[d].append((block.label, index))
                for u in instr.uses:
                    self.use_sites[u].append((block.label, index))

    # ------------------------------------------------------------------

    def defs_of(self, vreg) -> list:
        return self.def_sites[vreg]

    def uses_of(self, vreg) -> list:
        return self.use_sites[vreg]

    def is_dead(self, vreg) -> bool:
        """Defined but never used (candidates for dead-code removal)."""
        return not self.use_sites[vreg]

    def never_defined(self, vreg) -> bool:
        return not self.def_sites[vreg]

    def occurrence_counts(self, vreg) -> tuple:
        """(number of defs, number of uses) — spill-cost raw material."""
        return len(self.def_sites[vreg]), len(self.use_sites[vreg])

    def __repr__(self) -> str:
        return f"DefUse({self.function.name})"
