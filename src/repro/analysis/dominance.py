"""Dominator computation (Cooper–Harvey–Kennedy "engineered" iterative
algorithm over reverse postorder).

Loop detection needs dominance to recognise back edges; the dominator tree
is also exposed for tests and for clients that want structural queries.
"""

from __future__ import annotations

from repro.analysis.cfg import CFG
from repro.ir.basicblock import Block


class DominatorTree:
    """Immediate dominators for every reachable block of a function."""

    def __init__(self, cfg: CFG):
        self.cfg = cfg
        self.function = cfg.function
        #: label -> label of immediate dominator (entry maps to itself).
        self.idom: dict[str, str] = {}
        self._rpo_number: dict[str, int] = {}
        self._compute()
        self._children: dict[str, list] = {}
        for label, dom in self.idom.items():
            if label != self.function.entry.label:
                self._children.setdefault(dom, []).append(label)

    def _compute(self) -> None:
        rpo = self.cfg.reverse_postorder()
        entry = self.function.entry.label
        for index, block in enumerate(rpo):
            self._rpo_number[block.label] = index
        idom = {entry: entry}
        changed = True
        while changed:
            changed = False
            for block in rpo:
                if block.label == entry:
                    continue
                new_idom = None
                for pred in self.cfg.preds[block.label]:
                    if pred not in idom:
                        continue  # not yet processed / unreachable
                    if new_idom is None:
                        new_idom = pred
                    else:
                        new_idom = self._intersect(idom, pred, new_idom)
                if new_idom is not None and idom.get(block.label) != new_idom:
                    idom[block.label] = new_idom
                    changed = True
        self.idom = idom

    def _intersect(self, idom: dict, a: str, b: str) -> str:
        number = self._rpo_number
        while a != b:
            while number[a] > number[b]:
                a = idom[a]
            while number[b] > number[a]:
                b = idom[b]
        return a

    # ------------------------------------------------------------------

    def dominates(self, a: Block, b: Block) -> bool:
        """True when ``a`` dominates ``b`` (every block dominates itself)."""
        label_a, runner = a.label, b.label
        entry = self.function.entry.label
        while True:
            if runner == label_a:
                return True
            if runner == entry:
                return label_a == entry
            runner = self.idom[runner]

    def immediate_dominator(self, block: Block) -> Block | None:
        if block.label == self.function.entry.label:
            return None
        return self.function.block(self.idom[block.label])

    def children(self, block: Block) -> list:
        return [
            self.function.block(l) for l in self._children.get(block.label, [])
        ]

    def __repr__(self) -> str:
        return f"DominatorTree({self.function.name})"
