"""repro — a reproduction of Briggs, Cooper, Kennedy & Torczon,
"Coloring Heuristics for Register Allocation" (PLDI 1989).

The package is a complete, self-contained compiler substrate plus the
paper's two allocators:

* :mod:`repro.lang` — a mini-FORTRAN front end (lexer/parser/sema);
* :mod:`repro.ir` — three-address IR with CFG, printer/parser, verifier;
* :mod:`repro.frontend` — AST -> IR lowering;
* :mod:`repro.analysis` — dominators, loops, liveness, live-range webs;
* :mod:`repro.regalloc` — interference graphs, coalescing, spill costs,
  Chaitin's allocator, the optimistic (Briggs) allocator, Matula–Beck
  ordering, spill-code insertion, the Build–Simplify–Select driver;
* :mod:`repro.machine` — an RT/PC-shaped target, object-size encoder,
  and a cycle-counting simulator with physical-register execution;
* :mod:`repro.workloads` — the paper's benchmark programs (SVD, LINPACK,
  SIMPLEX, EULER, CEDETA, quicksort) ported to mini-FORTRAN;
* :mod:`repro.experiments` — harnesses regenerating Figures 5, 6 and 7.

Sixty-second tour::

    from repro import compile_source, allocate_module, run_module, rt_pc

    module = compile_source(FORTRAN_SOURCE)
    target = rt_pc()
    allocation = allocate_module(module, target, "briggs", validate=True)
    result = run_module(module, target=target,
                        assignment=allocation.assignment)
"""

from repro.frontend import compile_source
from repro.machine import Target, rt_pc, run_module, Simulator
from repro.regalloc import (
    AllocationResult,
    BriggsAllocator,
    ChaitinAllocator,
    ModuleAllocation,
    allocate_function,
    allocate_module,
    check_allocation,
)
from repro.workloads import all_workloads, get_workload

__version__ = "1.0.0"

__all__ = [
    "compile_source",
    "Target",
    "rt_pc",
    "run_module",
    "Simulator",
    "AllocationResult",
    "ModuleAllocation",
    "BriggsAllocator",
    "ChaitinAllocator",
    "allocate_function",
    "allocate_module",
    "check_allocation",
    "all_workloads",
    "get_workload",
    "__version__",
]
