"""The optimization pipeline: run the scalar passes to a fixed point."""

from __future__ import annotations

from repro.ir.function import Function
from repro.ir.module import Module
from repro.ir.verifier import verify_function
from repro.opt.dce import eliminate_dead_code
from repro.opt.local import (
    eliminate_common_subexpressions,
    fold_constants,
    propagate_copies,
)


class OptimizationReport:
    """What one pipeline run changed."""

    __slots__ = ("function_name", "iterations", "folded", "propagated",
                 "cse_hits", "dead_removed")

    def __init__(self, function_name: str):
        self.function_name = function_name
        self.iterations = 0
        self.folded = 0
        self.propagated = 0
        self.cse_hits = 0
        self.dead_removed = 0

    @property
    def total_changes(self) -> int:
        return self.folded + self.propagated + self.cse_hits + self.dead_removed

    def __repr__(self) -> str:
        return (
            f"OptimizationReport({self.function_name}: "
            f"fold={self.folded}, copy={self.propagated}, "
            f"cse={self.cse_hits}, dce={self.dead_removed} "
            f"in {self.iterations} iteration(s))"
        )


def optimize_function(
    function: Function, max_iterations: int = 10, verify: bool = True
) -> OptimizationReport:
    """Run fold -> copy-prop -> CSE -> DCE until nothing changes."""
    report = OptimizationReport(function.name)
    for _ in range(max_iterations):
        report.iterations += 1
        changes = 0
        folded = fold_constants(function)
        propagated = propagate_copies(function)
        cse = eliminate_common_subexpressions(function)
        dead = eliminate_dead_code(function)
        report.folded += folded
        report.propagated += propagated
        report.cse_hits += cse
        report.dead_removed += dead
        changes = folded + propagated + cse + dead
        if changes == 0:
            break
    if verify:
        verify_function(function)
    return report


def optimize_module(module: Module, verify: bool = True) -> dict:
    """Optimize every function; returns name -> OptimizationReport."""
    return {
        function.name: optimize_function(function, verify=verify)
        for function in module
    }
