"""Global dead-code elimination, driven by liveness.

An instruction is removable when it is *pure* (no store, call, print,
spill, or control effect) and none of the registers it defines is live
immediately after it.  One liveness solve per sweep; sweeps repeat until
nothing changes (removing an instruction can make its operands' producers
dead in turn).
"""

from __future__ import annotations

from repro.analysis.cfg import CFG
from repro.analysis.liveness import Liveness
from repro.ir.function import Function

#: Opcodes whose execution matters even when the result is unused.
_EFFECTFUL = {
    "store",
    "fstore",
    "spill",
    "fspill",
    "call",
    "print",
    "fprint",
}


def _sweep(function: Function) -> int:
    liveness = Liveness(function, CFG(function))
    removed = 0
    for block in function.blocks:
        keep = []
        live = liveness.live_out[block.label]
        # Walk backward, tracking liveness precisely within the block.
        for instr in reversed(block.instrs):
            defines_live = any((live >> d.id) & 1 for d in instr.defs)
            removable = (
                instr.defs
                and not defines_live
                and not instr.is_terminator
                and instr.op not in _EFFECTFUL
            )
            if removable:
                removed += 1
                continue
            keep.append(instr)
            for d in instr.defs:
                live &= ~(1 << d.id)
            for u in instr.uses:
                live |= 1 << u.id
        keep.reverse()
        block.instrs = keep
    return removed


def eliminate_dead_code(function: Function, max_sweeps: int = 20) -> int:
    """Remove dead pure instructions; returns the total removed."""
    total = 0
    for _ in range(max_sweeps):
        removed = _sweep(function)
        if removed == 0:
            break
        total += removed
    return total
