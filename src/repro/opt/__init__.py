"""Machine-independent optimizer.

The paper's allocator sits downstream of the IRⁿ optimizer ("our front-end
and optimizer rely on the code generator doing a good job of global
register allocation").  This package provides the classic scalar passes a
1989 optimizer would run before register allocation:

* :mod:`repro.opt.local` — block-local constant folding, copy
  propagation, and common-subexpression elimination;
* :mod:`repro.opt.dce` — global dead-code elimination (fixpoint over
  uses; side-effecting instructions are roots);
* :mod:`repro.opt.pipeline` — runs the passes to a fixed point and
  reports what changed.

All passes preserve the verifier's invariants and program semantics —
checked by differential tests over random programs.  They also *change
register pressure* (folding kills short ranges, CSE lengthens ranges),
which is why ``benchmarks/test_ablations.py`` measures their effect on
spilling.
"""

from repro.opt.local import fold_constants, propagate_copies, eliminate_common_subexpressions
from repro.opt.dce import eliminate_dead_code
from repro.opt.pipeline import OptimizationReport, optimize_function, optimize_module

__all__ = [
    "fold_constants",
    "propagate_copies",
    "eliminate_common_subexpressions",
    "eliminate_dead_code",
    "optimize_function",
    "optimize_module",
    "OptimizationReport",
]
