"""Block-local scalar optimizations.

Each pass makes one forward walk per basic block, maintaining facts that
are killed on redefinition — sound without any global analysis:

* **constant folding**: evaluates pure instructions whose operands are
  known constants (semantics borrowed from the simulator's op tables, so
  the folder can never disagree with execution), and resolves
  conditional branches with constant operands into unconditional jumps;
* **copy propagation**: after ``mov d, s``, uses of ``d`` read ``s``
  until either is redefined (the dead ``mov`` is left for DCE);
* **local CSE**: identical pure computations on identical operands reuse
  the first result through a copy (which the coalescer later merges).
"""

from __future__ import annotations

import math

from repro.errors import SimulationError
from repro.ir.function import Function
from repro.ir.instructions import Instr
from repro.ir.values import RClass
from repro.machine.simulator import _FLOAT_BINARY, _INT_BINARY, _RELOP_FUNCS, _UNARY

#: Opcodes that compute a pure function of their operands.
_PURE_BINARY = set(_INT_BINARY) | set(_FLOAT_BINARY)
_PURE_UNARY = set(_UNARY) | {"i2f", "f2i"}
_PURE = _PURE_BINARY | _PURE_UNARY | {"li", "lf", "la"}


def _evaluate(instr: Instr, values: list):
    """Value of a pure instruction on constant operands, or None when the
    evaluation would trap (leave those for runtime)."""
    try:
        if instr.op in _INT_BINARY:
            return _INT_BINARY[instr.op](values[0], values[1])
        if instr.op in _FLOAT_BINARY:
            return _FLOAT_BINARY[instr.op](values[0], values[1])
        if instr.op in _UNARY:
            return _UNARY[instr.op](values[0])
        if instr.op == "i2f":
            return float(values[0])
        if instr.op == "f2i":
            return math.trunc(values[0])
    except (ArithmeticError, ValueError, SimulationError):
        # Trapping evaluations (division by zero, sqrt of a negative)
        # stay in the code and trap at runtime, as they should.
        return None
    return None


def fold_constants(function: Function) -> int:
    """Fold constant computations; returns the number of changes."""
    changed = 0
    for block in function.blocks:
        constants: dict = {}
        for index, instr in enumerate(block.instrs):
            if instr.op in ("li", "lf"):
                constants[instr.defs[0]] = instr.imm
                continue

            if (
                instr.op in ("cbr", "fcbr")
                and instr.uses[0] in constants
                and instr.uses[1] in constants
            ):
                taken = _RELOP_FUNCS[instr.relop](
                    constants[instr.uses[0]], constants[instr.uses[1]]
                )
                target = instr.targets[0] if taken else instr.targets[1]
                block.instrs[index] = Instr("jmp", targets=[target])
                changed += 1
                continue

            if (
                instr.op in _PURE_BINARY | _PURE_UNARY
                and instr.uses
                and all(u in constants for u in instr.uses)
            ):
                value = _evaluate(instr, [constants[u] for u in instr.uses])
                if value is not None:
                    dst = instr.defs[0]
                    op = "li" if dst.rclass == RClass.INT else "lf"
                    imm = int(value) if op == "li" else float(value)
                    block.instrs[index] = Instr(op, [dst], imm=imm)
                    constants[dst] = imm
                    changed += 1
                    continue

            for d in instr.defs:
                constants.pop(d, None)
    if changed:
        function.remove_unreachable_blocks()
    return changed


def propagate_copies(function: Function) -> int:
    """Forward uses through copies within each block; returns changes."""
    changed = 0
    for block in function.blocks:
        copy_of: dict = {}
        for instr in block.instrs:
            replacement = {}
            for u in instr.uses:
                source = copy_of.get(u)
                if source is not None:
                    replacement[u] = source
            if replacement:
                instr.replace_uses(replacement)
                changed += len(replacement)
            for d in instr.defs:
                copy_of.pop(d, None)
                for key in [k for k, v in copy_of.items() if v is d]:
                    del copy_of[key]
            if instr.is_copy and instr.defs[0] is not instr.uses[0]:
                copy_of[instr.defs[0]] = instr.uses[0]
    return changed


def eliminate_common_subexpressions(function: Function) -> int:
    """Local CSE over pure computations; returns changes."""
    changed = 0
    for block in function.blocks:
        available: dict = {}  # key -> defining vreg
        by_operand: dict = {}  # vreg -> keys mentioning it
        for index, instr in enumerate(block.instrs):
            key = None
            if instr.op in _PURE and not instr.is_copy and instr.defs:
                key = (instr.op, tuple(id(u) for u in instr.uses), instr.imm)
                existing = available.get(key)
                if existing is not None:
                    dst = instr.defs[0]
                    op = "mov" if dst.rclass == RClass.INT else "fmov"
                    block.instrs[index] = Instr(op, [dst], [existing])
                    changed += 1
                    key = None  # the replacement defines dst via a copy
            for d in instr.defs:
                # Redefinition kills every expression mentioning d and any
                # expression whose result lived in d.
                for stale in by_operand.pop(d, []):
                    available.pop(stale, None)
                for k in [k for k, v in available.items() if v is d]:
                    del available[k]
            if key is not None:
                available[key] = instr.defs[0]
                for u in instr.uses:
                    by_operand.setdefault(u, []).append(key)
    return changed
