"""Command-line interface: ``python -m repro <command>``.

Commands
--------

``compile FILE``
    Compile mini-FORTRAN and print the textual IR.
``run FILE``
    Compile and execute; prints outputs and cycle counts.  With
    ``--allocate`` the program runs on physical registers after register
    allocation (the default is virtual-register execution).
``allocate FILE``
    Allocate registers and print per-routine statistics.
``verify [FILE]``
    Defense-in-depth smoke checks: translation validation (differential
    execution of pre- vs post-allocation code) over a file or the
    workload registry, or — with ``--inject FAULT --seed N`` — a seeded
    fault-injection probe asserting the fault is detected by a defense
    layer or degrades gracefully.  ``--list-faults`` shows the registry.
``fuzz``
    Closed-loop correctness fuzzing (defense layer 4): seeded random
    interference graphs and random programs driven through both
    allocators under full paranoia, the exact small-graph oracle, the
    §2.3 subset guarantee, and differential execution; failures are
    minimized by a deterministic shrinker and written as crash bundles.
``trace WORKLOAD``
    Allocate one registry workload with tracing on and write a Chrome
    trace-event file (loadable in Perfetto or ``chrome://tracing``);
    ``--metrics`` additionally writes the metrics document.  With
    ``--serve-replay JOURNAL`` it instead re-allocates a serve
    journal's unanswered backlog post-mortem, one trace file per
    journaled request.
``tail``
    Follow a live server's structured event ring (``GET /events``):
    admissions, sheds, breaker transitions, degrades, pool restarts,
    repair-round summaries — formatted one event per line.
``bench-diff BASELINE CURRENT``
    Compare two metrics/benchmark JSON files and report per-metric
    deltas; exits 1 on regression unless ``--report-only``.  The
    timing gate widens by measured machine noise (the documents'
    ``noise.rel``, or ``--noise``), so environmental drift between
    machines does not read as a code regression.
``figures [NAMES...]``
    Regenerate the paper's tables (figure5 figure6 figure7 ablations
    intstudy, or ``all``) into ``--out`` (default ``results/``).
``report``
    Regenerate every experiment into one markdown document
    (``results/REPORT.md``).
``workloads``
    List the bundled benchmark programs.
"""

from __future__ import annotations

import argparse
import pathlib
import sys

from repro.errors import ReproError
from repro.frontend import compile_source
from repro.ir import print_module
from repro.machine import rt_pc, run_module
from repro.machine.encoding import object_size
from repro.regalloc import allocate_module


def _target_from(args) -> object:
    target = rt_pc()
    if args.int_regs != 16:
        target = target.with_int_regs(args.int_regs)
    if args.float_regs != 8:
        target = target.with_float_regs(args.float_regs)
    return target


def _compile_file(args):
    source = pathlib.Path(args.file).read_text()
    return compile_source(source, pathlib.Path(args.file).stem,
                          optimize=args.optimize)


def cmd_compile(args) -> int:
    print(print_module(_compile_file(args)), end="")
    return 0


def _alloc_kwargs(args) -> dict:
    return {
        "coalesce": args.coalesce,
        "rematerialize": args.rematerialize,
        "split_ranges": args.split_ranges,
        "jobs": args.jobs,
        "policy": args.policy,
        "timeout": args.timeout,
        "retries": args.retries,
        "bundle_dir": args.bundle_dir,
        "paranoia": args.paranoia,
        "cache": not args.no_cache,
    }


def cmd_run(args) -> int:
    module = _compile_file(args)
    target = _target_from(args)
    assignment = None
    if args.allocate:
        allocation = allocate_module(
            module, target, args.allocate, validate=True, **_alloc_kwargs(args)
        )
        assignment = allocation.assignment
    result = run_module(
        module, entry=args.entry, target=target, assignment=assignment
    )
    for value in result.outputs:
        print(value)
    mode = f"allocated ({args.allocate})" if args.allocate else "virtual"
    print(
        f"# {mode}: {result.instructions} instructions, "
        f"{result.cycles} cycles, {result.calls} calls",
        file=sys.stderr,
    )
    return 0


def cmd_allocate(args) -> int:
    from repro.experiments.tables import Table
    from repro.observability import Tracer, metrics_document

    module = _compile_file(args)
    target = _target_from(args)
    tracer = Tracer() if args.json else None
    allocation = allocate_module(
        module, target, args.method, validate=True, tracer=tracer,
        journal=args.journal, resume=not args.no_resume,
        **_alloc_kwargs(args)
    )
    if args.json:
        document = metrics_document(
            allocation, tracer=tracer,
            meta={"file": args.file, "method": args.method,
                  "target": target.name, "jobs": args.jobs},
        )
        _emit_json(document, args.json)
    if args.json != "-":
        table = Table(
            f"register allocation ({args.method}, target {target.name})",
            ["Routine", "Live Ranges", "Spilled", "Spill Cost", "Passes",
             "Object Size"],
        )
        for name, result in allocation.results.items():
            table.add_row(
                name,
                result.stats.live_ranges,
                result.stats.registers_spilled,
                result.stats.spill_cost,
                result.stats.pass_count,
                object_size(result.function, target, result.assignment),
            )
        print(table.render())
    return 0


def _emit_json(document: dict, path: str) -> None:
    """Write ``document`` to ``path``, or to stdout when path is ``-``."""
    import json

    if path == "-":
        json.dump(document, sys.stdout, indent=2, sort_keys=True)
        sys.stdout.write("\n")
        return
    from repro.observability import write_metrics_json

    write_metrics_json(document, path)
    print(f"wrote {path}", file=sys.stderr)


def _serve_replay(args) -> int:
    """Post-mortem tracing: re-allocate a serve journal's request
    backlog under a live tracer, one Chrome trace file per request.

    The journal (``repro-journal/1``, written by ``repro serve
    --journal``) records every admitted request and its outcome; the
    unanswered ones are exactly what the server would replay on
    restart.  This command runs that replay *offline* with tracing on,
    so an operator can see where a wedged backlog was spending its
    time without touching the production process.
    """
    from repro.durability.journal import read_journal
    from repro.ir.wire import decode_module
    from repro.observability import Tracer, write_chrome_trace
    from repro.service.protocol import parse_allocate_request

    records, recovery = read_journal(args.serve_replay)
    requests = [r for r in records if r.get("type") == "request"]
    answered = {r.get("jid") for r in records
                if r.get("type") == "response"}
    backlog = [r for r in requests if r.get("jid") not in answered]
    if args.replay_all:
        backlog = requests
    elif not backlog and requests:
        print(
            f"serve-replay: no unanswered backlog in "
            f"{args.serve_replay}; re-tracing all {len(requests)} "
            f"journaled requests (as --replay-all would)",
            file=sys.stderr,
        )
        backlog = requests
    if not backlog:
        print(f"serve-replay: no journaled requests in "
              f"{args.serve_replay}", file=sys.stderr)
        return 1
    if recovery.dropped_bytes:
        print(
            f"serve-replay: dropped {recovery.dropped_bytes} torn "
            f"trailing bytes ({recovery.reason})", file=sys.stderr,
        )
    out_dir = pathlib.Path(args.out or "results/serve-replay")
    out_dir.mkdir(parents=True, exist_ok=True)
    failures = 0
    for record in backlog:
        jid = record.get("jid", "unknown")
        trace_id = f"replay-{jid}"
        try:
            # Same validation the server applies on admission; the
            # deadline fields only clamp, they do not time the replay.
            request = parse_allocate_request(
                dict(record, fault=None, fault_args={}), 30.0, 120.0,
            )
            module = (
                compile_source(request.source, request.name)
                if request.source is not None
                else decode_module(request.wire)
            )
            target = (
                rt_pc()
                .with_int_regs(request.int_regs)
                .with_float_regs(request.float_regs)
            )
            tracer = Tracer()
            tracer.trace_id = trace_id
            with tracer.span("service:request", cat="service",
                             trace_id=trace_id, method=request.method,
                             function=request.name):
                allocate_module(
                    module, target, request.method,
                    validate=request.validate, tracer=tracer,
                    jobs=args.jobs,
                )
        except ReproError as error:
            failures += 1
            print(f"jid {jid}: replay failed: {error}", file=sys.stderr)
            continue
        out = out_dir / f"trace-{trace_id}.json"
        write_chrome_trace(tracer, out)
        spans = sum(1 for e in tracer.events if e["ph"] == "B")
        print(
            f"jid {jid} ({request.name}/{request.method}): "
            f"{spans} spans -> {out}",
            file=sys.stderr,
        )
    print(
        f"serve-replay: {len(backlog) - failures}/{len(backlog)} "
        f"requests re-traced into {out_dir}",
        file=sys.stderr,
    )
    return 0 if failures == 0 else 1


def cmd_trace(args) -> int:
    from repro.experiments.runner import allocate_workload
    from repro.observability import (
        Tracer,
        metrics_document,
        write_chrome_trace,
    )
    from repro.workloads import all_workloads

    if args.serve_replay is not None:
        return _serve_replay(args)
    if args.workload is None:
        print("error: a workload name (or --serve-replay JOURNAL) is "
              "required", file=sys.stderr)
        return 2
    workloads = all_workloads()
    if args.workload not in workloads:
        print(
            f"unknown workload {args.workload!r} "
            f"(known: {', '.join(sorted(workloads))})",
            file=sys.stderr,
        )
        return 2
    workload = workloads[args.workload]
    target = _target_from(args)
    tracer = Tracer()
    _module, allocation = allocate_workload(
        workload, target, args.method, validate=args.validate,
        tracer=tracer, jobs=args.jobs,
    )
    out = args.out or f"results/trace-{args.workload}.json"
    pathlib.Path(out).parent.mkdir(parents=True, exist_ok=True)
    write_chrome_trace(tracer, out)
    spans = sum(1 for e in tracer.events if e["ph"] == "B")
    print(
        f"{args.workload}/{args.method}: {spans} spans, "
        f"{len(tracer.counters)} counters -> {out}",
        file=sys.stderr,
    )
    if args.metrics:
        document = metrics_document(
            allocation, tracer=tracer,
            meta={"workload": args.workload, "method": args.method,
                  "target": target.name, "jobs": args.jobs},
        )
        _emit_json(document, args.metrics)
    return 0


def cmd_bench_diff(args) -> int:
    from repro.observability import compare_files

    report = compare_files(
        args.baseline, args.current,
        threshold=args.threshold, min_time=args.min_time,
        noise=args.noise,
    )
    print(report.render())
    if args.report_only:
        return 0
    return 0 if report.ok else 1


def cmd_verify(args) -> int:
    from repro.robustness import (
        FAULTS,
        probe_fault,
        validate_workload,
        verify_allocation,
    )

    if args.list_faults:
        for name, fault in sorted(FAULTS.items()):
            print(f"{name:22s} [{fault.kind}, expect {fault.expect}]  "
                  f"{fault.description}")
        return 0

    methods = ["briggs", "chaitin"] if args.method == "all" else [args.method]
    target = rt_pc().with_int_regs(args.int_regs).with_float_regs(
        args.float_regs
    )

    if args.inject:
        source = (
            pathlib.Path(args.file).read_text() if args.file else None
        )
        fault_names = (
            sorted(FAULTS) if args.inject == "all" else [args.inject]
        )
        all_ok = True
        for fault_name in fault_names:
            for method in methods:
                probe = probe_fault(
                    fault_name, seed=args.seed, source=source, method=method
                )
                if probe.injected is None:
                    verdict = (
                        "INAPPLICABLE (injector found nothing to corrupt)"
                    )
                elif probe.detected_by:
                    verdict = f"DETECTED by {', '.join(probe.detected_by)}"
                elif probe.degraded:
                    verdict = (
                        f"DEGRADED gracefully ({probe.failures} recorded)"
                    )
                else:
                    verdict = "SILENT PASS-THROUGH"
                print(f"{fault_name} (seed {args.seed}, {method}): {verdict}")
                if probe.injected:
                    print(f"  injected: {probe.injected}")
                if probe.detail:
                    print(f"  evidence: {probe.detail}")
                all_ok = all_ok and probe.ok
        return 0 if all_ok else 1

    if args.file:
        stem = pathlib.Path(args.file).stem
        source = pathlib.Path(args.file).read_text()
        for method in methods:
            baseline = compile_source(source, stem)
            module = compile_source(source, stem)
            allocation = allocate_module(
                module, target, method,
                jobs=args.jobs, policy=args.policy, timeout=args.timeout,
                retries=args.retries, bundle_dir=args.bundle_dir,
                paranoia=args.paranoia, cache=not args.no_cache,
            )
            report = verify_allocation(
                module, allocation, entry=args.entry, baseline=baseline
            )
            print(
                f"{stem}/{method}: OK — {report.functions_checked} "
                f"functions, {len(report.outputs)} outputs match the "
                f"pre-allocation run"
            )
        return 0

    from repro.workloads import all_workloads

    names = args.workload or sorted(all_workloads())
    for name in names:
        workload = all_workloads()[name]
        for method in methods:
            report = validate_workload(workload, method, target,
                                       paranoia=args.paranoia)
            print(
                f"{name}/{method}: OK — {report.functions_checked} "
                f"functions, {len(report.outputs)} outputs match"
            )
    return 0


def cmd_fuzz(args) -> int:
    from repro.robustness import run_fuzz

    modes = ("graph", "ir") if args.mode == "both" else (args.mode,)
    report = run_fuzz(
        seed=args.seed,
        iters=args.iters,
        max_nodes=args.max_nodes,
        bundle_dir=args.bundle_dir,
        modes=modes,
        paranoia=args.paranoia,
        log=print,
        journal=args.journal,
        resume=not args.no_resume,
    )
    print(report.summary())
    return 0 if report.ok else 1


_FIGURES = ("figure5", "figure6", "figure7", "ablations", "intstudy")


def cmd_figures(args) -> int:
    from repro.experiments import (
        run_ablations,
        run_figure5,
        run_figure6,
        run_figure7,
    )
    from repro.experiments.intstudy import run_integer_study

    wanted = list(args.names) or ["all"]
    if "all" in wanted:
        wanted = list(_FIGURES)
    unknown = [n for n in wanted if n not in _FIGURES]
    if unknown:
        print(f"unknown figure(s): {', '.join(unknown)}", file=sys.stderr)
        return 2
    out = pathlib.Path(args.out)
    out.mkdir(parents=True, exist_ok=True)
    runners = {
        "figure5": lambda: run_figure5().to_table().render(),
        "figure6": lambda: run_figure6(array_size=args.array_size)
        .to_table()
        .render(),
        "figure7": lambda: run_figure7().to_table().render(),
        "ablations": lambda: run_ablations().to_table().render(),
        "intstudy": lambda: run_integer_study(
            quicksort_size=args.array_size
        ).to_table().render(),
    }
    for name in wanted:
        rendered = runners[name]()
        (out / f"{name}.txt").write_text(rendered + "\n")
        print(rendered)
        print()
    return 0


def cmd_report(args) -> int:
    from repro.experiments.report import build_report

    report = build_report(array_size=args.array_size)
    out = pathlib.Path(args.out)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(report)
    print(f"wrote {out}")
    return 0


def cmd_workloads(_args) -> int:
    from repro.workloads import all_workloads

    for name, workload in sorted(all_workloads().items()):
        routines = ", ".join(workload.routines)
        print(f"{name:10s} {workload.description}")
        print(f"{'':10s}   routines: {routines}")
    return 0


def cmd_tail(args) -> int:
    """Stream a live server's event ring to stdout, one formatted line
    per event.  Plain HTTP/1.0 over a raw socket — works against any
    ``repro serve`` with zero dependencies.  ``--follow`` polls with a
    ``since=`` cursor so each event prints exactly once even though the
    server's ring is bounded."""
    import socket
    import time

    from repro.observability.events import format_event, parse_ndjson

    since = args.since
    while True:
        query = f"/events?since={since}"
        if args.kind:
            query += f"&kind={args.kind}"
        if args.limit:
            query += f"&limit={args.limit}"
        try:
            with socket.create_connection(
                (args.host, args.port), timeout=5.0
            ) as sock:
                sock.sendall(f"GET {query} HTTP/1.0\r\n\r\n"
                             .encode("ascii"))
                chunks = []
                while True:
                    data = sock.recv(65536)
                    if not data:
                        break
                    chunks.append(data)
        except OSError as error:
            print(f"error: cannot reach {args.host}:{args.port}: "
                  f"{error}", file=sys.stderr)
            return 1
        raw = b"".join(chunks).decode("utf-8", "replace")
        head, _, body = raw.partition("\r\n\r\n")
        status_line = head.split("\r\n", 1)[0]
        if " 200 " not in status_line:
            print(f"error: server answered {status_line!r}",
                  file=sys.stderr)
            return 1
        for record in parse_ndjson(body):
            print(format_event(record), flush=True)
            seq = record.get("seq")
            if isinstance(seq, int):
                since = max(since, seq)
        if not args.follow:
            return 0
        time.sleep(args.interval)


def cmd_serve(args) -> int:
    from repro.service import ServiceConfig, run_server

    config = ServiceConfig(
        host=args.host,
        port=args.port,
        concurrency=args.concurrency,
        queue_limit=args.queue_limit,
        default_deadline=args.deadline,
        max_deadline=args.max_deadline,
        breaker_threshold=args.breaker_threshold,
        breaker_cooldown=args.breaker_cooldown,
        jobs=args.jobs,
        policy=args.policy,
        bundle_dir=args.bundle_dir,
        cache_dir=args.cache_dir,
        allow_faults=args.allow_faults,
        journal_path=args.journal,
        trace_dir=args.trace_dir,
    )

    def announce(service):
        print(
            f"repro serve: listening on {config.host}:{service.port} "
            f"(concurrency {config.concurrency}, queue "
            f"{config.queue_limit}, deadline {config.default_deadline}s, "
            f"breaker {config.breaker_threshold}x/"
            f"{config.breaker_cooldown}s)",
            flush=True,
        )

    return run_server(config, announce=announce)


def cmd_torture(args) -> int:
    from repro.durability.torture import run_torture
    from repro.workloads import all_workloads

    workloads = list(args.workload or [])
    known = all_workloads()
    for name in workloads:
        if name not in known:
            print(f"error: unknown workload {name!r} "
                  f"(known: {', '.join(sorted(known))})", file=sys.stderr)
            return 2
    sources = []
    if args.file:
        sources.append(pathlib.Path(args.file).read_text())
    if not workloads and not sources:
        workloads = ["quicksort"]
    report = run_torture(
        workloads=workloads, sources=sources, target=_target_from(args),
        method=args.method, kills=args.kills, seed=args.seed,
        step_max=args.step_max, torn_rate=args.torn_rate, jobs=args.jobs,
        journal_path=args.journal, max_restarts=args.max_restarts,
        bundle_dir=args.bundle_dir,
    )
    if args.json:
        _emit_json(report.as_dict(), args.json)
    if args.json != "-":
        verdict = "ok" if report.ok else "FAILED"
        print(
            f"torture {verdict}: {report.kills_delivered}/"
            f"{report.kills_requested} kills delivered "
            f"({report.torn_delivered} torn), {report.functions} "
            f"functions, {report.re_executed} re-executed "
            f"(bound {report.re_executed_bound}), "
            f"identical={report.identical}, "
            f"leaked workers={len(report.leaked_workers)}, "
            f"{report.elapsed:.2f}s"
        )
        print(f"lives: {' -> '.join(report.reasons)}")
        if report.mismatched:
            print("mismatched modules: " + ", ".join(report.mismatched))
        replay = (
            f"repro torture --seed {args.seed} --kills {args.kills} "
            f"--step-max {args.step_max} --torn-rate {args.torn_rate}"
        )
        for name in workloads:
            replay += f" --workload {name}"
        if args.file:
            replay += f" {args.file}"
        print(f"replay: {replay}")
    return 0 if report.ok else 1


def cmd_gc(args) -> int:
    from repro.durability.gc import collect_debris

    max_age = (None if args.max_age_days is None
               else args.max_age_days * 86400.0)
    report = collect_debris(
        results_dir=args.results, cache_dir=args.cache_dir,
        keep=args.keep, max_age=max_age, dry_run=args.dry_run,
    )
    if args.json:
        _emit_json(report.as_dict(), args.json)
    if args.json != "-":
        verb = "would remove" if report.dry_run else "removed"
        print(
            f"gc: {report.scanned} artifacts scanned, {report.kept} "
            f"kept, {verb} {len(report.removed)} "
            f"({report.freed_bytes} bytes)"
        )
        for name, stats in sorted(report.categories.items()):
            print(f"  {name}: {stats['scanned']} scanned, "
                  f"{stats['kept']} kept, {stats['removed']} removed")
    return 0


def cmd_chaos(args) -> int:
    from repro.service.chaos import (
        DEFAULT_FAULT_RATES,
        load_storm_manifest,
        replay_command,
        run_chaos,
    )

    rates = None
    requests, seed = args.requests, args.seed
    concurrency, deadline = args.concurrency, args.deadline
    workloads = None
    if args.replay:
        # One-command reproduction of a recorded storm: every parameter
        # comes from the bundle's manifest; command-line tuning flags
        # are ignored in favor of what actually ran.
        manifest = load_storm_manifest(args.replay)
        requests = manifest.get("requests", requests)
        seed = manifest.get("seed", seed)
        concurrency = manifest.get("concurrency", concurrency)
        deadline = manifest.get("deadline", deadline)
        workloads = manifest.get("workloads")
        rates = manifest.get("fault_rates")
    elif args.fault:
        rates = {name: 0.0 for name in DEFAULT_FAULT_RATES}
        for spec in args.fault:
            name, _, rate_text = spec.partition("=")
            if name not in DEFAULT_FAULT_RATES:
                known = ", ".join(sorted(DEFAULT_FAULT_RATES))
                print(f"error: unknown chaos fault {name!r} "
                      f"(known: {known})", file=sys.stderr)
                return 2
            rates[name] = (
                float(rate_text) if rate_text
                else max(DEFAULT_FAULT_RATES[name], 0.1)
            )
    report = run_chaos(
        requests=requests,
        seed=seed,
        fault_rates=rates,
        concurrency=concurrency,
        deadline=deadline,
        workloads=workloads,
        bundle_dir=args.bundle_dir,
    )
    if args.json:
        _emit_json(report.as_dict(), args.json)
    if args.json != "-":
        print(report.summary())
        if not report.ok:
            print(f"replay: {replay_command(report.storm)}")
    return 0 if report.ok else 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Briggs et al. 1989 reproduction: mini-FORTRAN compiler with "
            "Chaitin and optimistic register allocation"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_target_flags(p):
        p.add_argument("--int-regs", type=int, default=16,
                       help="general-purpose registers (default 16)")
        p.add_argument("--float-regs", type=int, default=8,
                       help="floating-point registers (default 8)")

    def add_alloc_flags(p):
        p.add_argument(
            "--coalesce",
            choices=["aggressive", "conservative"],
            default="aggressive",
            help="copy-coalescing strategy (default aggressive)",
        )
        p.add_argument(
            "--rematerialize",
            action="store_true",
            help="recompute spilled constants instead of reloading",
        )
        p.add_argument(
            "--split-ranges",
            action="store_true",
            help="split loop-transparent live ranges around pressured loops",
        )
        p.add_argument(
            "--jobs",
            type=int,
            default=1,
            help=(
                "allocate functions over the persistent worker pool with "
                "N processes (0 = one per CPU, clamped to the function "
                "count; default 1 = serial)"
            ),
        )
        p.add_argument(
            "--no-cache",
            action="store_true",
            help=(
                "disable the pool's content-addressed response cache "
                "(identical parallel requests then always re-dispatch)"
            ),
        )
        p.add_argument(
            "--policy",
            choices=["raise", "degrade-to-naive", "skip"],
            default="raise",
            help=(
                "what to do when one function's allocation fails "
                "(default raise)"
            ),
        )
        p.add_argument(
            "--timeout",
            type=float,
            default=None,
            help="per-function timeout in seconds for parallel workers",
        )
        p.add_argument(
            "--retries",
            type=int,
            default=1,
            help="in-process re-attempts after a worker crash (default 1)",
        )
        p.add_argument(
            "--bundle-dir",
            default=None,
            help=(
                "write deterministic crash bundles "
                "(<dir>/crash-<function>/) for recorded failures"
            ),
        )
        p.add_argument(
            "--paranoia",
            choices=["off", "cheap", "full"],
            default="off",
            help=(
                "phase-boundary invariant checking inside the allocation "
                "cycle (default off; 'cheap' is O(V+E) outcome checks, "
                "'full' adds stack and select-replay verification)"
            ),
        )

    p = sub.add_parser("compile", help="print the compiled IR")
    p.add_argument("file")
    p.add_argument("--optimize", action="store_true")
    p.set_defaults(func=cmd_compile)

    p = sub.add_parser("run", help="compile and execute")
    p.add_argument("file")
    p.add_argument("--entry", default=None)
    p.add_argument("--optimize", action="store_true")
    p.add_argument(
        "--allocate",
        choices=["chaitin", "briggs", "briggs-degree", "spill-all",
                 "repair"],
        default=None,
        help="allocate registers and run on the physical machine",
    )
    add_target_flags(p)
    add_alloc_flags(p)
    p.set_defaults(func=cmd_run)

    p = sub.add_parser("allocate", help="report allocation statistics")
    p.add_argument("file")
    p.add_argument("--method", default="briggs",
                   choices=["chaitin", "briggs", "briggs-degree", "spill-all",
                            "repair"])
    p.add_argument("--optimize", action="store_true")
    p.add_argument(
        "--json",
        default=None,
        metavar="PATH",
        help=(
            "also write the full metrics document (schema repro-metrics/1, "
            "see docs/OBSERVABILITY.md) to PATH; '-' writes it to stdout "
            "instead of the table"
        ),
    )
    p.add_argument(
        "--journal",
        default=None,
        metavar="PATH",
        help=(
            "journal allocation progress to PATH (crash-safe WAL, see "
            "docs/DURABILITY.md); re-running with the same journal "
            "replays completed functions bit-identically"
        ),
    )
    p.add_argument(
        "--no-resume",
        action="store_true",
        help="reset the journal instead of resuming from it",
    )
    add_target_flags(p)
    add_alloc_flags(p)
    p.set_defaults(func=cmd_allocate)

    p = sub.add_parser(
        "trace",
        help="allocate a registry workload and write a Perfetto-loadable "
        "Chrome trace-event file",
    )
    p.add_argument("workload", nargs="?", default=None,
                   help="registry workload name (see 'repro workloads'; "
                   "not needed with --serve-replay)")
    p.add_argument("--method", default="briggs",
                   choices=["chaitin", "briggs", "briggs-degree",
                            "spill-all", "repair"])
    p.add_argument("--out", default=None, metavar="PATH",
                   help="trace file (default results/trace-<workload>"
                   ".json); with --serve-replay, the output *directory* "
                   "(default results/serve-replay)")
    p.add_argument("--serve-replay", default=None, metavar="JOURNAL",
                   dest="serve_replay",
                   help="post-mortem mode: re-allocate the unanswered "
                   "request backlog of a 'repro serve --journal' WAL "
                   "with tracing on, writing one trace-replay-<jid>"
                   ".json per request")
    p.add_argument("--replay-all", action="store_true", dest="replay_all",
                   help="with --serve-replay: re-trace every journaled "
                   "request, not just the unanswered backlog")
    p.add_argument("--metrics", default=None, metavar="PATH",
                   help="also write the metrics document ('-' for stdout)")
    p.add_argument("--jobs", type=int, default=1,
                   help="parallel workers; each worker gets its own trace "
                   "lane (default 1)")
    p.add_argument("--validate", action="store_true",
                   help="run the post-allocation validator (its time shows "
                   "up in the trace)")
    p.add_argument("--int-regs", type=int, default=12,
                   help="GPRs (default 12: the pressured experiment target, "
                   "so spill passes appear in the trace)")
    p.add_argument("--float-regs", type=int, default=6,
                   help="FPRs (default 6)")
    p.set_defaults(func=cmd_trace)

    p = sub.add_parser(
        "bench-diff",
        help="compare two metrics/benchmark JSON files for regressions",
    )
    p.add_argument("baseline", help="baseline metrics JSON "
                   "(e.g. benchmarks/BENCH_PR1.json)")
    p.add_argument("current", help="candidate metrics JSON")
    p.add_argument("--threshold", type=float, default=0.25,
                   help="relative regression threshold (default 0.25 = "
                   "+25%%)")
    p.add_argument("--min-time", type=float, default=0.0005,
                   help="absolute noise floor in seconds for timing "
                   "metrics (default 0.0005)")
    p.add_argument("--report-only", action="store_true",
                   help="always exit 0; print the comparison without "
                   "gating")
    p.add_argument("--noise", type=float, default=None,
                   help="measured machine-noise fraction that widens "
                   "the timing gate multiplicatively (e.g. 0.30 for "
                   "±30%% run-to-run noise; default: the larger "
                   "'noise.rel' recorded in the two documents by "
                   "run_bench's pinned probe, 0 if absent)")
    p.set_defaults(func=cmd_bench_diff)

    p = sub.add_parser(
        "verify",
        help="translation validation and fault-injection smoke checks",
    )
    p.add_argument("file", nargs="?", default=None,
                   help="mini-FORTRAN file (default: registry workloads)")
    p.add_argument("--workload", action="append", default=None,
                   metavar="NAME", help="validate one registry workload "
                   "(repeatable; default all)")
    p.add_argument("--method", default="all",
                   choices=["briggs", "chaitin", "briggs-degree",
                            "spill-all", "repair", "all"],
                   help="allocator(s) to validate (default: briggs+chaitin)")
    p.add_argument("--inject", default=None, metavar="FAULT",
                   help="inject one registered fault ('all' sweeps the "
                   "registry) and report which defense layer catches it")
    p.add_argument("--seed", type=int, default=0,
                   help="fault-injection seed (default 0)")
    p.add_argument("--list-faults", action="store_true",
                   help="list the fault registry and exit")
    p.add_argument("--entry", default=None)
    p.add_argument("--int-regs", type=int, default=12,
                   help="validation target GPRs (default 12: pressured, "
                   "so spill code is exercised)")
    p.add_argument("--float-regs", type=int, default=6,
                   help="validation target FPRs (default 6)")
    p.add_argument("--jobs", type=int, default=1)
    p.add_argument("--no-cache", action="store_true",
                   help="disable the worker pool's response cache")
    p.add_argument("--policy",
                   choices=["raise", "degrade-to-naive", "skip"],
                   default="raise")
    p.add_argument("--timeout", type=float, default=None)
    p.add_argument("--retries", type=int, default=1)
    p.add_argument("--bundle-dir", default=None)
    p.add_argument("--paranoia", choices=["off", "cheap", "full"],
                   default="cheap",
                   help="phase-boundary invariant checking during the "
                   "validation allocations (default cheap)")
    p.set_defaults(func=cmd_verify)

    p = sub.add_parser(
        "fuzz",
        help="closed-loop correctness fuzzing with a minimizing shrinker",
    )
    p.add_argument("--seed", type=int, default=0,
                   help="master seed; the whole campaign replays "
                   "bit-identically from it (default 0)")
    p.add_argument("--iters", type=int, default=200,
                   help="fuzz iterations (default 200)")
    p.add_argument("--max-nodes", type=int, default=16,
                   help="max virtual nodes per random graph (default 16)")
    p.add_argument("--mode", choices=["graph", "ir", "both"],
                   default="both",
                   help="case mix: random interference graphs, random "
                   "programs, or alternating (default both)")
    p.add_argument("--paranoia", choices=["cheap", "full"], default="full",
                   help="invariant-checking level inside fuzzed "
                   "allocations (default full; 'off' is not offered — "
                   "the fuzz loop never runs unchecked)")
    p.add_argument("--bundle-dir", default="results/fuzz",
                   help="directory for shrunken crash bundles "
                   "(<dir>/fuzz-<kind>-<case_seed>/; default results/fuzz)")
    p.add_argument("--journal", default=None, metavar="PATH",
                   help="journal completed iterations to PATH (crash-safe "
                   "WAL); rerunning with the same journal resumes the "
                   "campaign instead of restarting it")
    p.add_argument("--no-resume", action="store_true",
                   help="reset the journal instead of resuming from it")
    p.set_defaults(func=cmd_fuzz)

    p = sub.add_parser("figures", help="regenerate the paper's tables")
    p.add_argument("names", nargs="*", help="figure5 figure6 figure7 ablations | all")
    p.add_argument("--out", default="results")
    p.add_argument("--array-size", type=int, default=256)
    p.set_defaults(func=cmd_figures)

    p = sub.add_parser(
        "report", help="regenerate every experiment into one markdown report"
    )
    p.add_argument("--out", default="results/REPORT.md")
    p.add_argument("--array-size", type=int, default=256)
    p.set_defaults(func=cmd_report)

    p = sub.add_parser("workloads", help="list bundled benchmarks")
    p.set_defaults(func=cmd_workloads)

    p = sub.add_parser(
        "serve",
        help="run the hardened allocation daemon (NDJSON over TCP, "
        "HTTP probes on the same port; see docs/SERVICE.md)",
    )
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=7632,
                   help="TCP port (default 7632; 0 picks an ephemeral "
                   "port and prints it)")
    p.add_argument("--concurrency", type=int, default=2,
                   help="requests allocating at once (default 2)")
    p.add_argument("--queue-limit", type=int, default=8,
                   help="admitted-but-waiting requests beyond "
                   "--concurrency before shedding with 429 (default 8)")
    p.add_argument("--deadline", type=float, default=30.0,
                   help="default per-request deadline in seconds "
                   "(default 30)")
    p.add_argument("--max-deadline", type=float, default=120.0,
                   help="hard ceiling a request may ask for (default 120)")
    p.add_argument("--breaker-threshold", type=int, default=5,
                   help="consecutive backend failures that open the "
                   "circuit breaker (default 5)")
    p.add_argument("--breaker-cooldown", type=float, default=5.0,
                   help="seconds the breaker stays open before one "
                   "half-open trial (default 5)")
    p.add_argument("--jobs", type=int, default=2,
                   help="worker-pool size per request (default 2)")
    p.add_argument("--policy",
                   choices=["raise", "degrade-to-naive", "skip"],
                   default="degrade-to-naive",
                   help="per-function failure policy (default "
                   "degrade-to-naive: answer spill-all rather than 500)")
    p.add_argument("--bundle-dir", default=None,
                   help="write per-request crash bundles under "
                   "<dir>/request-<n>/")
    p.add_argument("--cache-dir", default=None,
                   help="attach the checksummed disk tier of the "
                   "response cache at this directory")
    p.add_argument("--allow-faults", action="store_true",
                   help="enable chaos fault injection (the 'fault' "
                   "request field); off by default — a production "
                   "server answers 403 to fault-carrying requests")
    p.add_argument("--journal", default=None, metavar="PATH",
                   help="journal admitted requests to a crash-safe WAL; "
                   "a restarted server replays the unanswered ones and "
                   "holds /readyz at 503 until the backlog drains")
    p.add_argument("--trace-dir", default=None, metavar="DIR",
                   dest="trace_dir",
                   help="spool each traced request's merged Chrome "
                   "trace to DIR/trace-<trace_id>.json (requests opt "
                   "in with \"trace\": true)")
    p.set_defaults(func=cmd_serve)

    p = sub.add_parser(
        "tail",
        help="follow a live server's structured event ring "
        "(GET /events): admissions, sheds, breaker flips, degrades, "
        "pool restarts, repair summaries",
    )
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=7632,
                   help="server port (default 7632)")
    p.add_argument("--follow", "-f", action="store_true",
                   help="poll forever instead of printing once; the "
                   "since= cursor guarantees each event prints exactly "
                   "once")
    p.add_argument("--interval", type=float, default=1.0,
                   help="poll interval in seconds with --follow "
                   "(default 1.0)")
    p.add_argument("--since", type=int, default=0,
                   help="only events with seq > SINCE (default 0: "
                   "everything still in the ring)")
    p.add_argument("--kind", default=None,
                   help="only events of this kind (e.g. breaker, "
                   "admission, shed)")
    p.add_argument("--limit", type=int, default=None,
                   help="at most N events per poll")
    p.set_defaults(func=cmd_tail)

    p = sub.add_parser(
        "chaos",
        help="replay a seeded fault storm against a live in-process "
        "server and assert no wrong answers, no leaked workers, "
        "bounded p99",
    )
    p.add_argument("--requests", type=int, default=40,
                   help="request-stream length (default 40)")
    p.add_argument("--seed", type=int, default=0,
                   help="stream seed; the whole storm replays from it "
                   "(default 0)")
    p.add_argument("--concurrency", type=int, default=4,
                   help="concurrent chaos clients (default 4)")
    p.add_argument("--deadline", type=float, default=10.0,
                   help="per-request deadline in seconds (default 10)")
    p.add_argument("--fault", action="append", default=None,
                   metavar="NAME[=RATE]",
                   help="enable one injected fault at RATE (default "
                   "rate if omitted; repeatable; default: the standard "
                   "mix — worker_crash, slow_request, cache_corrupt, "
                   "client_disconnect)")
    p.add_argument("--json", default=None, metavar="PATH",
                   help="write the chaos report as JSON ('-' for "
                   "stdout)")
    p.add_argument("--bundle-dir", default=None,
                   help="write per-request crash bundles for degraded "
                   "allocations under <dir>/request-<n>/, plus the "
                   "storm.json manifest --replay consumes")
    p.add_argument("--replay", default=None, metavar="BUNDLE",
                   help="re-run the exact storm recorded in BUNDLE's "
                   "storm.json (a chaos --bundle-dir artifact); "
                   "overrides the tuning flags")
    p.set_defaults(func=cmd_chaos)

    p = sub.add_parser(
        "torture",
        help="SIGKILL a supervised allocation at seeded journal appends "
        "and prove it resumes to a bit-identical result",
    )
    p.add_argument("file", nargs="?", default=None,
                   help="mini-FORTRAN file to torture (default: the "
                   "quicksort workload)")
    p.add_argument("--workload", action="append", default=None,
                   metavar="NAME",
                   help="torture a registry workload (repeatable; see "
                   "'repro workloads')")
    p.add_argument("--method", default="briggs",
                   choices=["chaitin", "briggs", "briggs-degree",
                            "spill-all", "repair"])
    p.add_argument("--kills", type=int, default=10,
                   help="seeded SIGKILL points to schedule (default 10)")
    p.add_argument("--seed", type=int, default=0,
                   help="schedule seed; same seed replays the exact "
                   "same storm (default 0)")
    p.add_argument("--step-max", type=int, default=4, dest="step_max",
                   help="max journal appends between kill points "
                   "(min 2; default 4)")
    p.add_argument("--torn-rate", type=float, default=0.34,
                   dest="torn_rate",
                   help="fraction of deaths that land mid-record, "
                   "leaving a torn tail (default 0.34)")
    p.add_argument("--jobs", type=int, default=1,
                   help="parallel workers inside the tortured child "
                   "(default 1)")
    p.add_argument("--journal", default=None, metavar="PATH",
                   help="journal file (default: a temp file, removed "
                   "afterwards)")
    p.add_argument("--max-restarts", type=int, default=None,
                   help="supervisor restart budget (default kills + 2)")
    p.add_argument("--bundle-dir", default=None,
                   help="crash-bundle directory for degraded "
                   "allocations")
    p.add_argument("--json", default=None, metavar="PATH",
                   help="write the torture report as JSON ('-' for "
                   "stdout)")
    add_target_flags(p)
    p.set_defaults(func=cmd_torture)

    p = sub.add_parser(
        "gc",
        help="sweep crash/fuzz/request bundles and cache quarantine",
    )
    p.add_argument("--results", default="results", metavar="DIR",
                   help="bundle tree to sweep (default results/)")
    p.add_argument("--cache-dir", default=None, metavar="DIR",
                   help="disk-cache root whose quarantine/ to cap")
    p.add_argument("--keep", type=int, default=16,
                   help="newest artifacts retained per category "
                   "(default 16)")
    p.add_argument("--max-age-days", type=float, default=None,
                   dest="max_age_days",
                   help="also remove artifacts older than this many "
                   "days, even within the keep window")
    p.add_argument("--dry-run", action="store_true",
                   help="report what would be removed; delete nothing")
    p.add_argument("--json", default=None, metavar="PATH",
                   help="write the GC report as JSON ('-' for stdout)")
    p.set_defaults(func=cmd_gc)

    return parser


def main(argv=None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    except FileNotFoundError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
