"""Exception hierarchy shared by every subsystem of the reproduction.

Each compilation stage raises its own subclass of :class:`ReproError` so that
callers (tests, the experiment harness, user code) can react to a lexing
problem differently from, say, a register-allocation invariant violation.
All errors carry an optional source location so diagnostics point at the
offending line of mini-FORTRAN or textual IR.
"""

from __future__ import annotations


class SourceLocation:
    """A (line, column) position in a named source buffer."""

    __slots__ = ("filename", "line", "column")

    def __init__(self, filename: str = "<source>", line: int = 0, column: int = 0):
        self.filename = filename
        self.line = line
        self.column = column

    def __str__(self) -> str:
        return f"{self.filename}:{self.line}:{self.column}"

    def __repr__(self) -> str:
        return f"SourceLocation({self.filename!r}, {self.line}, {self.column})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, SourceLocation):
            return NotImplemented
        return (self.filename, self.line, self.column) == (
            other.filename,
            other.line,
            other.column,
        )

    def __hash__(self) -> int:
        return hash((self.filename, self.line, self.column))


class ReproError(Exception):
    """Base class for every error raised by the repro package."""

    def __init__(self, message: str, location: SourceLocation | None = None):
        self.message = message
        self.location = location
        if location is not None:
            super().__init__(f"{location}: {message}")
        else:
            super().__init__(message)


class LexError(ReproError):
    """Raised when the mini-FORTRAN lexer meets an invalid character or token."""


class ParseError(ReproError):
    """Raised when the mini-FORTRAN parser cannot derive a statement."""


class SemanticError(ReproError):
    """Raised by semantic analysis: type errors, arity errors, unknown names."""


class IRError(ReproError):
    """Raised when IR is constructed or parsed inconsistently."""


class VerificationError(IRError):
    """Raised by the IR verifier when an invariant does not hold."""


class LoweringError(ReproError):
    """Raised when the front end cannot lower an AST construct to IR."""


class AllocationError(ReproError):
    """Raised when register allocation violates one of its invariants."""


class SimulationError(ReproError):
    """Raised by the machine simulator (bad memory access, missing routine...)."""
