"""Exception hierarchy shared by every subsystem of the reproduction.

Each compilation stage raises its own subclass of :class:`ReproError` so that
callers (tests, the experiment harness, user code) can react to a lexing
problem differently from, say, a register-allocation invariant violation.
All errors carry an optional source location so diagnostics point at the
offending line of mini-FORTRAN or textual IR, plus a structured ``context``
dict (function name, pass index, phase, ...) that enclosing layers attach
with :meth:`ReproError.with_context` as the error propagates outward.
"""

from __future__ import annotations


class SourceLocation:
    """A (line, column) position in a named source buffer."""

    __slots__ = ("filename", "line", "column")

    def __init__(self, filename: str = "<source>", line: int = 0, column: int = 0):
        self.filename = filename
        self.line = line
        self.column = column

    def __str__(self) -> str:
        return f"{self.filename}:{self.line}:{self.column}"

    def __repr__(self) -> str:
        return f"SourceLocation({self.filename!r}, {self.line}, {self.column})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, SourceLocation):
            return NotImplemented
        return (self.filename, self.line, self.column) == (
            other.filename,
            other.line,
            other.column,
        )

    def __hash__(self) -> int:
        return hash((self.filename, self.line, self.column))


class ReproError(Exception):
    """Base class for every error raised by the repro package.

    ``context`` is a free-form diagnostics dict.  Code close to the fault
    states *what* went wrong; enclosing layers (the allocation driver, the
    experiment harness) add *where* — function name, pass index, phase —
    via :meth:`with_context` without re-wrapping the exception.
    """

    def __init__(
        self,
        message: str,
        location: SourceLocation | None = None,
        context: dict | None = None,
    ):
        self.message = message
        self.location = location
        self.context: dict = dict(context) if context else {}
        if location is not None:
            super().__init__(f"{location}: {message}")
        else:
            super().__init__(message)

    def with_context(self, **entries) -> "ReproError":
        """Merge ``entries`` into :attr:`context` (existing keys win, so
        the innermost — most precise — layer's values survive) and return
        ``self``, ready to re-raise."""
        for key, value in entries.items():
            self.context.setdefault(key, value)
        return self

    def __str__(self) -> str:
        base = super().__str__()
        if not self.context:
            return base
        detail = ", ".join(
            f"{key}={value}" for key, value in self.context.items()
        )
        return f"{base} [{detail}]"

    def __reduce__(self):
        # Keep location and context across process boundaries (the
        # parallel driver re-raises worker exceptions in the parent).
        return (_rebuild_error, (type(self), self.message, self.location,
                                 self.context))


def _rebuild_error(cls, message, location, context):
    return cls(message, location, context)


class LexError(ReproError):
    """Raised when the mini-FORTRAN lexer meets an invalid character or token."""


class ParseError(ReproError):
    """Raised when the mini-FORTRAN parser cannot derive a statement."""


class SemanticError(ReproError):
    """Raised by semantic analysis: type errors, arity errors, unknown names."""


class IRError(ReproError):
    """Raised when IR is constructed or parsed inconsistently."""


class VerificationError(IRError):
    """Raised by the IR verifier when an invariant does not hold."""


class LoweringError(ReproError):
    """Raised when the front end cannot lower an AST construct to IR."""


class AllocationError(ReproError):
    """Raised when register allocation violates one of its invariants."""


class InvariantError(AllocationError):
    """Raised by the paranoia layer (:mod:`repro.regalloc.invariants`)
    when a Build–Simplify–Select phase-boundary invariant does not hold:
    degree/adjacency disagreement, an incomplete coloring stack, an
    infeasible select decision, a negative spill cost, ..."""


class TranslationValidationError(AllocationError):
    """Raised by differential validation when allocated code observably
    diverges from the pre-allocation semantics (wrong outputs, a runtime
    fault the baseline did not have, ...)."""


class DriverTimeoutError(AllocationError):
    """Raised (or recorded, depending on the failure policy) when a
    parallel allocation worker exceeds its per-function timeout."""


class SimulationError(ReproError):
    """Raised by the machine simulator (bad memory access, missing routine...)."""


class SimulationBudgetError(SimulationError):
    """Raised when a run exhausts its instruction budget — distinguishes a
    (possibly injected) non-terminating program from a genuine machine
    fault, so validators can report hangs separately."""


class JournalError(ReproError):
    """Raised by the durability journal on unrecoverable misuse (writing
    to a closed journal, a record that cannot be serialized).  Damage
    *on disk* is never an error — torn or corrupt tails are truncated on
    open and reported on :class:`repro.durability.JournalRecovery`."""


class SupervisorError(ReproError):
    """Raised when a supervised child exhausts its restart budget (the
    task died more times than the supervisor is allowed to respawn it)."""


class MemoryBudgetError(ReproError):
    """Recorded (per :class:`repro.regalloc.FailurePolicy`) for a
    function whose allocation repeatedly blew the supervisor's RSS soft
    limit — the poisoned function is contained instead of being allowed
    to OOM-kill every future incarnation."""
