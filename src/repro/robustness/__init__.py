"""Defense-in-depth for the register allocator.

The paper's whole argument rests on the allocator being *correct while
spilling less*; this package makes the correctness half load-bearing with
layered defenses, each catching what the previous one cannot:

* **Layer 0/1 — validation** (:mod:`repro.robustness.validate`): the
  driver's static coloring check plus *translation validation* —
  differential execution of pre- vs post-allocation code on the
  simulator, catching spill-placement and caller-save-clobber bugs no
  graph check can see.
* **Layer 2 — fault injection** (:mod:`repro.robustness.faults`): a
  registry of seeded injectors modeling real allocator bugs; every
  registered fault must be detected by a layer or degrade gracefully on
  record — tests and ``repro verify --inject`` iterate the registry.
* **Layer 3 — the hardened driver** (:class:`repro.regalloc.FailurePolicy`
  and the parallel machinery in :mod:`repro.regalloc.driver`): per-function
  timeouts, bounded retries, per-function fallback, structured failure
  diagnostics, and deterministic crash bundles
  (:mod:`repro.robustness.bundles`).
* **Layer 4 — oracles and fuzzing** (:mod:`repro.robustness.oracle` and
  :mod:`repro.robustness.fuzz`): exact backtracking k-colorability for
  small graphs, the paper's §2.3 subset guarantee as an executable
  assertion, and a seeded closed-loop fuzzer over random graphs and
  random programs with a deterministic minimizing shrinker — run it with
  ``repro fuzz``.  The phase-boundary invariant checks it leans on live
  in :mod:`repro.regalloc.invariants` (``--paranoia``).

See ``docs/ROBUSTNESS.md`` for the full story.
"""

from repro.regalloc.driver import AllocationFailure, FailurePolicy
from repro.robustness.bundles import write_crash_bundle, write_fuzz_bundle
from repro.robustness.faults import (
    FAULTS,
    CrashingAllocator,
    Fault,
    FaultProbe,
    FlakyAllocator,
    HangingAllocator,
    probe_fault,
    register_fault,
)
from repro.robustness.fuzz import (
    FuzzFailure,
    FuzzReport,
    GraphSpec,
    IRSpec,
    build_graph,
    ddmin,
    generate_graph_spec,
    generate_ir_spec,
    run_fuzz,
    shrink_graph_spec,
    shrink_ir_spec,
)
from repro.robustness.oracle import (
    MAX_ORACLE_NODES,
    OracleVerdict,
    SubsetGuaranteeReport,
    check_function_subset_guarantee,
    check_subset_guarantee,
    check_workload_subset_guarantee,
    declared_guarantees,
    exact_color,
    oracle_verdict,
)
from repro.robustness.validate import (
    ValidationReport,
    default_validation_target,
    validate_registry,
    validate_workload,
    verify_allocation,
)

__all__ = [
    "AllocationFailure",
    "FailurePolicy",
    "write_crash_bundle",
    "write_fuzz_bundle",
    "FAULTS",
    "Fault",
    "FaultProbe",
    "CrashingAllocator",
    "FlakyAllocator",
    "HangingAllocator",
    "probe_fault",
    "register_fault",
    "FuzzFailure",
    "FuzzReport",
    "GraphSpec",
    "IRSpec",
    "build_graph",
    "ddmin",
    "generate_graph_spec",
    "generate_ir_spec",
    "run_fuzz",
    "shrink_graph_spec",
    "shrink_ir_spec",
    "MAX_ORACLE_NODES",
    "OracleVerdict",
    "SubsetGuaranteeReport",
    "check_function_subset_guarantee",
    "check_subset_guarantee",
    "check_workload_subset_guarantee",
    "declared_guarantees",
    "exact_color",
    "oracle_verdict",
    "ValidationReport",
    "default_validation_target",
    "validate_registry",
    "validate_workload",
    "verify_allocation",
]
