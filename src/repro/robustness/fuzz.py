"""Layer 4 of the defense stack: closed-loop correctness fuzzing.

Every other layer checks inputs somebody thought to write down.  This
module generates inputs nobody wrote down — seeded random interference
graphs and seeded random whole programs (:mod:`repro.workloads.synth`) —
and drives both allocators through *every* existing validator on each
one:

* **graph cases** — Briggs and Chaitin ``allocate_class`` under the full
  paranoia layer (:mod:`repro.regalloc.invariants`), the §2.3 subset
  guarantee (:mod:`repro.robustness.oracle`), and — for graphs small
  enough — the exact backtracking oracle, which turns "spilled a
  colorable graph" and "claimed an impossible coloring" into decided
  facts;
* **IR cases** — a generated program compiled twice and run end-to-end:
  allocation with ``validate=True`` and ``paranoia="full"``, translation
  validation against the pristine pre-allocation module
  (:mod:`repro.robustness.validate`), and the paper's per-function
  "Briggs never spills more than Chaitin" claim.

When a case fails, the loop does not stop at "seed 12345 crashed": a
deterministic delta-debugging **shrinker** (ddmin over graph nodes,
edges, costs and k; ddmin over program source lines) minimizes the case
while preserving the exact failure signature ``(stage, error type)``,
then writes a crash bundle through :mod:`repro.robustness.bundles` so
the witness is a few nodes or a few lines, not a haystack.

Everything stochastic flows from ONE :class:`random.Random` seeded by
the caller — the generator, the case parameters, the program synthesizer
— so ``repro fuzz --seed N`` is bit-reproducible: same seed, same cases,
same report, byte-identical bundles.
"""

from __future__ import annotations

import random

from repro.errors import ReproError
from repro.frontend import compile_source
from repro.ir.function import Function
from repro.ir.values import RClass
from repro.machine.simulator import run_module
from repro.machine.target import rt_pc
from repro.observability.trace import coerce_tracer
from repro.regalloc.briggs import BriggsAllocator
from repro.regalloc.chaitin import ChaitinAllocator
from repro.regalloc.driver import allocate_module
from repro.regalloc.interference import InterferenceGraph
from repro.regalloc.invariants import check_class_invariants, coerce_paranoia
from repro.regalloc.spill_costs import SpillCosts
from repro.robustness.oracle import (
    MAX_ORACLE_NODES,
    check_subset_guarantee,
    declared_guarantees,
    oracle_verdict,
)
from repro.robustness.validate import verify_allocation
from repro.workloads.synth import ProgramGenerator

#: Simulator budget for fuzzed programs (they terminate by construction;
#: the bound only catches injected non-termination).
_MAX_INSTRUCTIONS = 2_000_000


# ----------------------------------------------------------------------
# Case specifications (plain data, so the shrinker can transform them).
# ----------------------------------------------------------------------


class GraphSpec:
    """One random interference graph: ``n`` virtual nodes 0..n-1, ``k``
    registers, undirected ``edges`` over node indices, one spill cost per
    node.  Deliberately duplicated costs exercise the lowest-index
    tie-breaking both allocators must share."""

    __slots__ = ("n", "k", "edges", "costs")

    def __init__(self, n, k, edges, costs):
        self.n = n
        self.k = k
        self.edges = tuple(sorted(set(map(tuple, edges))))
        self.costs = tuple(costs)

    def key(self):
        return (self.n, self.k, self.edges, self.costs)

    def size(self) -> int:
        return self.n + len(self.edges)

    def as_dict(self) -> dict:
        return {
            "n": self.n,
            "k": self.k,
            "edges": [list(edge) for edge in self.edges],
            "costs": list(self.costs),
        }

    def __repr__(self) -> str:
        return (
            f"GraphSpec(n={self.n}, k={self.k}, "
            f"{len(self.edges)} edges)"
        )


class IRSpec:
    """One random whole-program case: source text plus the register-file
    sizes it is allocated against."""

    __slots__ = ("source", "k_int", "k_float")

    def __init__(self, source, k_int, k_float):
        self.source = source
        self.k_int = k_int
        self.k_float = k_float

    def key(self):
        return (self.source, self.k_int, self.k_float)

    def size(self) -> int:
        return len(self.source.splitlines())

    def as_dict(self) -> dict:
        return {
            "source": self.source,
            "k_int": self.k_int,
            "k_float": self.k_float,
        }

    def __repr__(self) -> str:
        return (
            f"IRSpec({self.size()} lines, k_int={self.k_int}, "
            f"k_float={self.k_float})"
        )


def generate_graph_spec(rng: random.Random, max_nodes: int = 16) -> GraphSpec:
    """Draw one random graph case from ``rng``."""
    n = rng.randint(2, max(2, max_nodes))
    k = rng.randint(2, 8)
    density = rng.uniform(0.1, 0.9)
    edges = [
        (a, b)
        for a in range(n)
        for b in range(a + 1, n)
        if rng.random() < density
    ]
    costs = [float(rng.randint(1, 8)) for _ in range(n)]
    return GraphSpec(n, k, edges, costs)


def generate_ir_spec(rng: random.Random) -> IRSpec:
    """Draw one random whole-program case from ``rng``."""
    statements = rng.randint(5, 12)
    calls = rng.random() < 0.7
    source = ProgramGenerator(
        statements=statements, calls=calls, rng=rng
    ).generate()
    k_int = rng.choice([4, 5, 6, 8, 12])
    k_float = rng.choice([3, 4, 6, 8])
    return IRSpec(source, k_int, k_float)


def build_graph(spec: GraphSpec):
    """Materialise a :class:`GraphSpec` into an
    :class:`InterferenceGraph` plus its :class:`SpillCosts`."""
    function = Function("fuzz")
    vregs = [
        function.new_vreg(RClass.INT, f"v{index}") for index in range(spec.n)
    ]
    graph = InterferenceGraph(RClass.INT, spec.k)
    for vreg in vregs:
        graph.ensure_node(vreg)
    for a, b in spec.edges:
        graph.add_edge(graph.node_of[vregs[a]], graph.node_of[vregs[b]])
    graph.freeze()
    costs = SpillCosts({
        vreg: spec.costs[index] for index, vreg in enumerate(vregs)
    })
    return graph, costs


# ----------------------------------------------------------------------
# Case checkers.  Each returns None on success or ``(stage, error)`` —
# the failure signature the shrinker must preserve.
# ----------------------------------------------------------------------


def check_graph_case(
    spec: GraphSpec,
    briggs_factory=BriggsAllocator,
    chaitin_factory=ChaitinAllocator,
    oracle_max_nodes: int = 14,
    stats: dict | None = None,
):
    """Run one graph case through allocators, invariants, the subset
    guarantee and (small graphs) the exact oracle."""
    graph, costs = build_graph(spec)

    stage = "briggs-invariants"
    try:
        briggs = briggs_factory().allocate_class(graph, costs)
        check_class_invariants(graph, briggs, level="full")
        stage = "chaitin-invariants"
        chaitin = chaitin_factory().allocate_class(graph, costs)
        check_class_invariants(graph, chaitin, level="full")

        stage = "repair-invariants"
        # The conflict-repair strategy rides the same corpus: its
        # assignment must satisfy every structural invariant (it
        # declares no §2.3 guarantees, so the subset stage below does
        # not apply to it).
        from repro.regalloc.repair import RepairAllocator

        repair = RepairAllocator().allocate_class(graph, costs)
        check_class_invariants(graph, repair, level="full")

        stage = "subset-guarantee"
        # §2.3 assertions apply only to strategies that declare them
        # (the cost-ordered Briggs does; the smallest-last ablation and
        # spill-all do not) — see oracle.declared_guarantees.
        declared = declared_guarantees(briggs_factory())
        if "spills-subset-of-chaitin" in declared:
            briggs_spilled = set(briggs.spilled_vregs)
            chaitin_spilled = set(chaitin.spilled_vregs)
            extra = briggs_spilled - chaitin_spilled
            if extra:
                names = sorted(vreg.pretty() for vreg in extra)
                raise AssertionError(
                    f"Briggs spilled {names} which Chaitin kept in "
                    f"registers"
                )
            if "matches-chaitin-when-colorable" in declared and \
                    not chaitin_spilled and briggs.colors != chaitin.colors:
                raise AssertionError(
                    "Chaitin colors completely but Briggs disagrees"
                )
            # Cross-check against the reference implementation of the
            # theorem (pristine allocators even when factories are
            # injected).
            check_subset_guarantee(graph, costs)

        stage = "oracle"
        if spec.n <= oracle_max_nodes:
            verdict = oracle_verdict(graph, briggs,
                                     max_nodes=MAX_ORACLE_NODES)
            # A contradiction from repair (spilling a graph it claims to
            # have colored completely, or vice versa) is just as fatal as
            # one from briggs; a repair spill on a colorable graph is a
            # heuristic gap, counted separately.
            repair_verdict = oracle_verdict(graph, repair,
                                            max_nodes=MAX_ORACLE_NODES)
            if stats is not None:
                stats["oracle_checked"] = stats.get("oracle_checked", 0) + 1
                if verdict.heuristic_gap:
                    stats["oracle_gaps"] = stats.get("oracle_gaps", 0) + 1
                if repair_verdict.heuristic_gap:
                    stats["repair_oracle_gaps"] = stats.get(
                        "repair_oracle_gaps", 0) + 1
    except Exception as error:  # noqa: BLE001 - the signature IS the data
        return stage, error
    return None


def check_ir_case(
    spec: IRSpec,
    methods=("briggs", "chaitin"),
    paranoia: str = "full",
    max_instructions: int = _MAX_INSTRUCTIONS,
):
    """Run one program case end-to-end under every validator."""
    stage = "compile"
    try:
        baseline = compile_source(spec.source, "fuzz")
        stage = "baseline-run"
        run_module(baseline, max_instructions=max_instructions)

        target = rt_pc().with_int_regs(spec.k_int).with_float_regs(
            spec.k_float
        )
        allocations = {}
        for method in methods:
            name = method if isinstance(method, str) else method.name
            stage = f"allocate[{name}]"
            module = compile_source(spec.source, "fuzz")
            allocation = allocate_module(
                module, target, method, validate=True, paranoia=paranoia
            )
            stage = f"differential[{name}]"
            verify_allocation(
                module, allocation, baseline=baseline, static=False,
                max_instructions=max_instructions,
            )
            allocations[name] = allocation

        if "briggs" in allocations and "chaitin" in allocations:
            stage = "briggs-not-worse"
            briggs, chaitin = allocations["briggs"], allocations["chaitin"]
            for name in chaitin.results:
                briggs_spills = briggs.result(name).stats.registers_spilled
                chaitin_spills = chaitin.result(name).stats.registers_spilled
                if briggs_spills > chaitin_spills:
                    raise AssertionError(
                        f"{name}: Briggs spilled {briggs_spills} ranges, "
                        f"Chaitin only {chaitin_spills}"
                    )
    except Exception as error:  # noqa: BLE001
        return stage, error
    return None


def _failure_key(failure):
    stage, error = failure
    return (stage, type(error).__name__)


# ----------------------------------------------------------------------
# The minimizing shrinker: deterministic delta debugging.
# ----------------------------------------------------------------------


def ddmin(items: list, still_fails, budget: list) -> list:
    """Zeller's ddmin: the smallest sublist of ``items`` (w.r.t. the
    chunk-removal neighborhood) on which ``still_fails`` holds.

    ``budget`` is a one-element mutable list of remaining predicate
    evaluations; exhausting it returns the best reduction so far, so a
    pathological case cannot wedge the fuzz loop.  Deterministic: no
    randomness, first shrinking chunk wins.
    """
    items = list(items)
    granularity = 2
    while len(items) >= 2 and budget[0] > 0:
        chunk = max(1, len(items) // granularity)
        reduced = False
        for start in range(0, len(items), chunk):
            if budget[0] <= 0:
                break
            candidate = items[:start] + items[start + chunk:]
            if not candidate:
                continue
            budget[0] -= 1
            if still_fails(candidate):
                items = candidate
                granularity = max(2, granularity - 1)
                reduced = True
                break
        if not reduced:
            if chunk == 1:
                break
            granularity = min(len(items), granularity * 2)
    return items


def shrink_graph_spec(spec: GraphSpec, failure, check, budget: int = 2000):
    """Minimize a failing :class:`GraphSpec` while preserving the failure
    signature: ddmin over nodes (induced subgraph), then edges, then a
    greedy cost-normalization and k-reduction pass."""
    key = _failure_key(failure)
    remaining = [budget]

    def fails(candidate: GraphSpec) -> bool:
        result = check(candidate)
        return result is not None and _failure_key(result) == key

    def induced(keep: list) -> GraphSpec:
        index_of = {node: i for i, node in enumerate(keep)}
        edges = [
            (index_of[a], index_of[b])
            for a, b in spec.edges
            if a in index_of and b in index_of
        ]
        return GraphSpec(
            len(keep), spec.k, edges, [spec.costs[node] for node in keep]
        )

    keep = ddmin(
        list(range(spec.n)),
        lambda nodes: fails(induced(sorted(nodes))),
        remaining,
    )
    spec = induced(sorted(keep))

    edges = ddmin(
        list(spec.edges),
        lambda kept: fails(GraphSpec(spec.n, spec.k, kept, spec.costs)),
        remaining,
    )
    spec = GraphSpec(spec.n, spec.k, edges, spec.costs)

    for index in range(spec.n):
        if remaining[0] <= 0:
            break
        if spec.costs[index] == 1.0:
            continue
        flattened = list(spec.costs)
        flattened[index] = 1.0
        candidate = GraphSpec(spec.n, spec.k, spec.edges, flattened)
        remaining[0] -= 1
        if fails(candidate):
            spec = candidate

    while spec.k > 1 and remaining[0] > 0:
        candidate = GraphSpec(spec.n, spec.k - 1, spec.edges, spec.costs)
        remaining[0] -= 1
        if not fails(candidate):
            break
        spec = candidate

    return spec


def shrink_ir_spec(spec: IRSpec, failure, check, budget: int = 400):
    """Minimize a failing program by ddmin over its source lines (a
    candidate that no longer compiles simply fails the signature match
    and is rejected).  Register-file sizes are pinned — they are part of
    the failure, not of the haystack."""
    key = _failure_key(failure)
    remaining = [budget]

    def fails(lines: list) -> bool:
        candidate = IRSpec("\n".join(lines) + "\n", spec.k_int, spec.k_float)
        result = check(candidate)
        return result is not None and _failure_key(result) == key

    lines = ddmin(spec.source.splitlines(), fails, remaining)
    return IRSpec("\n".join(lines) + "\n", spec.k_int, spec.k_float)


# ----------------------------------------------------------------------
# The loop.
# ----------------------------------------------------------------------


class FuzzFailure:
    """One fuzz failure: the shrunken witness plus its provenance."""

    __slots__ = ("kind", "iteration", "case_seed", "stage", "error_type",
                 "message", "original_size", "shrunk_size", "spec", "bundle")

    def __init__(self, kind, iteration, case_seed, stage, error,
                 original_size, spec, bundle=None):
        self.kind = kind  # "graph" | "ir"
        self.iteration = iteration
        self.case_seed = case_seed
        self.stage = stage
        self.error_type = type(error).__name__
        self.message = str(error)
        self.original_size = original_size
        self.shrunk_size = spec.size()
        #: the *minimized* failing GraphSpec / IRSpec.
        self.spec = spec
        #: crash-bundle directory, when one was written.
        self.bundle = bundle

    def as_dict(self) -> dict:
        """JSON-serializable form; :meth:`from_dict` round-trips it (the
        fuzz journal stores failures this way)."""
        return {
            "kind": self.kind,
            "iteration": self.iteration,
            "case_seed": self.case_seed,
            "stage": self.stage,
            "error_type": self.error_type,
            "message": self.message,
            "original_size": self.original_size,
            "shrunk_size": self.shrunk_size,
            "spec": self.spec.as_dict(),
            "bundle": self.bundle,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "FuzzFailure":
        failure = cls.__new__(cls)
        spec_data = data["spec"]
        if data["kind"] == "graph":
            spec = GraphSpec(
                spec_data["n"], spec_data["k"],
                [tuple(edge) for edge in spec_data["edges"]],
                spec_data["costs"],
            )
        else:
            spec = IRSpec(
                spec_data["source"], spec_data["k_int"],
                spec_data["k_float"],
            )
        for name in ("kind", "iteration", "case_seed", "stage",
                     "error_type", "message", "original_size",
                     "shrunk_size", "bundle"):
            setattr(failure, name, data.get(name))
        failure.spec = spec
        return failure

    def __repr__(self) -> str:
        return (
            f"FuzzFailure({self.kind} seed={self.case_seed}: "
            f"{self.error_type} in {self.stage}, "
            f"{self.original_size}->{self.shrunk_size})"
        )


class FuzzReport:
    """Outcome of one :func:`run_fuzz` campaign."""

    __slots__ = ("seed", "iterations", "graph_cases", "ir_cases",
                 "failures", "oracle_checked", "oracle_gaps",
                 "subset_checked")

    def __init__(self, seed):
        self.seed = seed
        self.iterations = 0
        self.graph_cases = 0
        self.ir_cases = 0
        self.failures: list = []
        self.oracle_checked = 0
        self.oracle_gaps = 0
        self.subset_checked = 0

    @property
    def ok(self) -> bool:
        return not self.failures

    def summary(self) -> str:
        lines = [
            f"fuzz seed={self.seed}: {self.iterations} iterations "
            f"({self.graph_cases} graph, {self.ir_cases} ir), "
            f"{len(self.failures)} failure(s)",
            f"  subset guarantee held on {self.subset_checked} graphs; "
            f"exact oracle agreed on {self.oracle_checked} "
            f"({self.oracle_gaps} heuristic gaps: Briggs spilled a "
            f"colorable graph)",
        ]
        for failure in self.failures:
            lines.append(
                f"  FAILURE [{failure.kind}] case_seed={failure.case_seed} "
                f"{failure.error_type} in {failure.stage}: "
                f"{failure.message}"
            )
            lines.append(
                f"    shrunk {failure.original_size} -> "
                f"{failure.shrunk_size}"
                + (f"; bundle: {failure.bundle}" if failure.bundle else "")
            )
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (
            f"FuzzReport(seed={self.seed}, {self.iterations} iterations, "
            f"{len(self.failures)} failures)"
        )


def run_fuzz(
    seed: int = 0,
    iters: int = 100,
    max_nodes: int = 16,
    bundle_dir=None,
    modes=("graph", "ir"),
    paranoia: str = "full",
    briggs_factory=BriggsAllocator,
    chaitin_factory=ChaitinAllocator,
    ir_methods=("briggs", "chaitin", "repair"),
    oracle_max_nodes: int = 14,
    shrink_budget: int | None = None,
    log=None,
    tracer=None,
    journal=None,
    resume: bool = True,
) -> FuzzReport:
    """Run the closed loop: generate, check, shrink, bundle.

    One seeded :class:`random.Random` drives every draw, so the whole
    campaign — cases, failures, shrunken witnesses, bundles — replays
    bit-identically from ``seed``.  ``modes`` picks the case mix
    (alternating deterministically); ``briggs_factory``/
    ``chaitin_factory``/``ir_methods`` exist so tests can inject known-bad
    allocators and watch the loop catch and shrink them.  Returns a
    :class:`FuzzReport`; failures carry minimized specs and (with
    ``bundle_dir``) crash-bundle paths.  With a ``tracer`` each case gets
    a span tagged with the campaign seed and its own case seed.

    With a ``journal`` (path or open :class:`~repro.durability.journal.
    Journal`) every completed iteration is appended to a crash-safe WAL;
    a killed campaign rerun with the same journal **replays** the
    finished iterations — counters, failures, bundle paths — and only
    executes the remainder.  The master RNG still draws every case seed
    in order, so resumed and unkilled campaigns are bit-identical.  A
    journal whose config (seed, generators, checkers) does not match is
    reset, as is any journal under ``resume=False``.
    """
    paranoia = coerce_paranoia(paranoia)
    if paranoia == "off":
        paranoia = "cheap"  # the fuzz loop never runs unchecked
    tracer = coerce_tracer(tracer)
    rng = random.Random(seed)
    report = FuzzReport(seed)
    stats: dict = {}

    from repro.durability.journal import (
        Journal,
        coerce_journal,
        mark_replay,
    )

    owned_journal = journal is not None and not isinstance(journal, Journal)
    journal_obj = coerce_journal(journal)
    completed: dict = {}
    if journal_obj is not None:
        import hashlib

        digest = hashlib.sha256(repr((
            "fuzz", seed, max_nodes, tuple(modes), paranoia,
            briggs_factory.__qualname__, chaitin_factory.__qualname__,
            tuple(ir_methods), oracle_max_nodes,
        )).encode("utf-8")).hexdigest()
        records = journal_obj.records()
        if (not resume or not records
                or records[0].get("type") != "fuzz-config"
                or records[0].get("digest") != digest):
            journal_obj.reset()
            journal_obj.append({"type": "fuzz-config", "digest": digest})
        else:
            for record in records[1:]:
                if record.get("type") == "iter":
                    completed[record["iteration"]] = record

    try:
        _run_fuzz_loop(
            rng, report, stats, completed, journal_obj, mark_replay,
            iters, modes, max_nodes, bundle_dir, paranoia,
            briggs_factory, chaitin_factory, ir_methods,
            oracle_max_nodes, shrink_budget, log, tracer, seed,
        )
    finally:
        if owned_journal and journal_obj is not None:
            journal_obj.close()

    report.oracle_checked = stats.get("oracle_checked", 0)
    report.oracle_gaps = stats.get("oracle_gaps", 0)
    return report


def _run_fuzz_loop(rng, report, stats, completed, journal_obj, mark_replay,
                   iters, modes, max_nodes, bundle_dir, paranoia,
                   briggs_factory, chaitin_factory, ir_methods,
                   oracle_max_nodes, shrink_budget, log, tracer, seed):
    for iteration in range(iters):
        mode = modes[iteration % len(modes)]
        case_seed = rng.getrandbits(32)
        case_rng = random.Random(case_seed)
        report.iterations += 1

        prior = completed.get(iteration)
        if prior is not None and prior.get("case_seed") == case_seed:
            # Journaled outcome: count it without re-running the case.
            # The master RNG already drew this iteration's case seed, so
            # the remaining (executed) iterations see the exact draws an
            # unkilled campaign would have.
            if prior.get("mode") == "graph":
                report.graph_cases += 1
                report.subset_checked += bool(prior.get("subset_ok"))
                stats["oracle_checked"] = stats.get("oracle_checked", 0) \
                    + prior.get("oracle_checked", 0)
                stats["oracle_gaps"] = stats.get("oracle_gaps", 0) \
                    + prior.get("oracle_gaps", 0)
            else:
                report.ir_cases += 1
            if prior.get("failure"):
                report.failures.append(
                    FuzzFailure.from_dict(prior["failure"])
                )
                tracer.add("fuzz_failures")
            mark_replay()
            continue

        oracle_before = (stats.get("oracle_checked", 0),
                         stats.get("oracle_gaps", 0))
        subset_ok = False

        if mode == "graph":
            report.graph_cases += 1
            spec = generate_graph_spec(case_rng, max_nodes)

            def check(candidate, _stats=None):
                return check_graph_case(
                    candidate,
                    briggs_factory=briggs_factory,
                    chaitin_factory=chaitin_factory,
                    oracle_max_nodes=oracle_max_nodes,
                    stats=_stats,
                )

            with tracer.span("fuzz:graph", cat="fuzz",
                             campaign_seed=seed, case_seed=case_seed,
                             iteration=iteration):
                failure = check(spec, stats)
            subset_ok = failure is None
            report.subset_checked += subset_ok
            if failure is not None:
                with tracer.span("fuzz:shrink", cat="fuzz",
                                 case_seed=case_seed):
                    shrunk = shrink_graph_spec(
                        spec, failure, check,
                        budget=shrink_budget or 2000,
                    )
                failure = check(shrunk) or failure
                record = FuzzFailure(
                    "graph", iteration, case_seed, failure[0], failure[1],
                    original_size=spec.size(), spec=shrunk,
                )
        else:
            report.ir_cases += 1
            spec = generate_ir_spec(case_rng)

            def check(candidate, _stats=None):
                return check_ir_case(
                    candidate, methods=ir_methods, paranoia=paranoia
                )

            with tracer.span("fuzz:ir", cat="fuzz",
                             campaign_seed=seed, case_seed=case_seed,
                             iteration=iteration):
                failure = check(spec)
            if failure is not None:
                with tracer.span("fuzz:shrink", cat="fuzz",
                                 case_seed=case_seed):
                    shrunk = shrink_ir_spec(
                        spec, failure, check,
                        budget=shrink_budget or 400,
                    )
                failure = check(shrunk) or failure
                record = FuzzFailure(
                    "ir", iteration, case_seed, failure[0], failure[1],
                    original_size=spec.size(), spec=shrunk,
                )

        if failure is not None:
            if bundle_dir is not None:
                from repro.robustness.bundles import write_fuzz_bundle

                record.bundle = str(write_fuzz_bundle(
                    record, master_seed=seed, out_dir=bundle_dir,
                ))
            report.failures.append(record)
            tracer.add("fuzz_failures")
            if log is not None:
                log(f"  {record!r}")
        if journal_obj is not None:
            entry = {
                "type": "iter",
                "iteration": iteration,
                "case_seed": case_seed,
                "mode": mode,
            }
            if mode == "graph":
                entry["subset_ok"] = subset_ok
                entry["oracle_checked"] = \
                    stats.get("oracle_checked", 0) - oracle_before[0]
                entry["oracle_gaps"] = \
                    stats.get("oracle_gaps", 0) - oracle_before[1]
            if failure is not None:
                entry["failure"] = record.as_dict()
            journal_obj.append(entry)
        if log is not None and (iteration + 1) % 50 == 0:
            log(
                f"  {iteration + 1}/{iters} iterations, "
                f"{len(report.failures)} failure(s)"
            )
