"""Layer 2 of the defense stack: seeded, composable fault injection.

A reproduction whose guards never fire is indistinguishable from one with
no guards.  Every entry in :data:`FAULTS` models one concrete bug class a
register allocator, spiller, or parallel driver could have — a missed
interference edge, a reload from the wrong frame slot, a worker process
that dies or wedges — and declares what the defense stack owes us for it:

* ``expect="detected"`` — some layer must trip: the phase-boundary
  invariant layer (:func:`repro.regalloc.invariants.recheck_assignment`
  over the retained final-pass graphs — the cheapest line of defense),
  the static coloring check (``check_allocation``), the IR verifier, or
  the dynamic differential run (layer 1,
  :mod:`repro.robustness.validate`);
* ``expect="degraded"`` — the system must absorb the fault and still
  produce a *correct* result, with the degradation recorded (perturbed
  spill costs change quality, never correctness; a crashed or hung worker
  is downgraded per :class:`repro.regalloc.FailurePolicy` and shows up on
  ``ModuleAllocation.failures``).

:func:`probe_fault` runs one fault through a correct pipeline and reports
which layers tripped; the parametrized registry test (and ``repro verify
--inject``) fail on any silent pass-through.  All injector choices are
driven by a seeded :class:`random.Random`, so every probe is replayable
from ``(fault, seed)`` alone.
"""

from __future__ import annotations

import contextlib
import os
import random
import time

from repro.analysis.cfg import CFG
from repro.analysis.liveness import Liveness
from repro.errors import (
    AllocationError,
    InvariantError,
    SimulationError,
    VerificationError,
)
from repro.frontend import compile_source
from repro.ir.values import RClass
from repro.ir.verifier import verify_function
from repro.machine.simulator import run_module
from repro.machine.target import rt_pc
from repro.observability.trace import coerce_tracer
from repro.regalloc.briggs import BriggsAllocator
from repro.regalloc.driver import allocate_module, check_allocation
from repro.regalloc.invariants import recheck_assignment
from repro.regalloc.interference import build_interference_graph
from repro.regalloc.spill_costs import INFINITE_COST, SpillCosts

_CLASSES = (RClass.INT, RClass.FLOAT)

#: The default probe program: enough integer pressure to spill several
#: ranges on the probe target (so slot faults apply), distinct values in
#: every live range (so a wrong reload is observable), and a call (so
#: caller-save discipline is exercised).  Two units, so the parallel
#: driver's worker faults have functions to fan out.
DEFAULT_FAULT_SOURCE = (
    "subroutine leaf(n)\n"
    "end\n"
    "program p\n"
    "integer a1, a2, a3, a4, a5, a6, m, total\n"
    "a1 = 1\n"
    "a2 = 2\n"
    "a3 = 3\n"
    "a4 = 4\n"
    "a5 = 5\n"
    "a6 = 6\n"
    "m = 41\n"
    "call leaf(m)\n"
    "total = a1 + a2 + a3 + a4 + a5 + a6 + m\n"
    "print total\n"
    "print a1\n"
    "print a6\n"
    "end\n"
)


def default_fault_target():
    """Four integer registers: the probe program must spill."""
    return rt_pc().with_int_regs(4).with_float_regs(3)


class Fault:
    """One registered fault: a seeded injector plus its contract."""

    __slots__ = ("name", "kind", "expect", "description", "inject")

    def __init__(self, name, kind, expect, description, inject):
        self.name = name
        #: "allocation" — corrupt a finished allocation/module;
        #: "costs" — perturb the allocator's input (a context manager);
        #: "worker" — break the parallel driver's workers;
        #: "service" — break a request against the live daemon;
        #: "process" — SIGKILL the allocating process itself.
        self.kind = kind
        self.expect = expect  # "detected" | "degraded"
        self.description = description
        self.inject = inject

    def __repr__(self) -> str:
        return f"Fault({self.name}: {self.kind}, expect {self.expect})"


#: name -> :class:`Fault`; iterate this to prove no fault passes silently.
FAULTS: dict = {}


def register_fault(name, *, kind="allocation", expect="detected",
                   description=""):
    def decorator(fn):
        FAULTS[name] = Fault(
            name, kind, expect,
            description or (fn.__doc__ or "").strip().splitlines()[0],
            fn,
        )
        return fn
    return decorator


# ----------------------------------------------------------------------
# Allocation-corrupting injectors
#
# Each takes (module, allocation, rng), mutates the allocation and/or the
# final IR the way the modeled bug would have, and returns a one-line
# description of what it broke — or None when the fault does not apply to
# this program (e.g. no spill code to corrupt).
# ----------------------------------------------------------------------


def _interfering_pairs(result):
    """All (vreg, vreg) interference pairs with distinct colors, in
    deterministic order."""
    function = result.function
    liveness = Liveness(function, CFG(function))
    pairs = []
    for rclass in _CLASSES:
        graph = build_interference_graph(
            function, rclass, result.target, liveness
        )
        for node in range(graph.k, graph.num_nodes):
            for neighbor in graph.neighbors(node):
                if graph.k <= node < neighbor:
                    a = graph.vreg_for(node)
                    b = graph.vreg_for(neighbor)
                    if result.assignment.get(a) is not None and \
                            result.assignment.get(b) is not None and \
                            result.assignment[a] != result.assignment[b]:
                        pairs.append((a, b))
    return pairs


def _set_color(allocation, result, vreg, color):
    """Corrupt both the per-function assignment (what the static checker
    reads) and the module-merged copy (what the simulator reads)."""
    result.assignment[vreg] = color
    allocation.assignment[vreg] = color


@register_fault("drop_edge", expect="detected")
def inject_drop_edge(module, allocation, rng):
    """A missed interference edge: one endpoint takes its neighbor's color."""
    for result in allocation.results.values():
        pairs = _interfering_pairs(result)
        if pairs:
            a, b = pairs[rng.randrange(len(pairs))]
            _set_color(allocation, result, a, result.assignment[b])
            return (
                f"{result.function.name}: recolored {a.pretty()} to share "
                f"color {result.assignment[b]} with interfering {b.pretty()}"
            )
    return None


@register_fault("merge_colors", expect="detected")
def inject_merge_colors(module, allocation, rng):
    """Two register files collapsed into one: every range colored c2 is
    remapped to c1, where some pair interferes across c1/c2."""
    for result in allocation.results.values():
        pairs = _interfering_pairs(result)
        if not pairs:
            continue
        a, b = pairs[rng.randrange(len(pairs))]
        keep, fold = result.assignment[a], result.assignment[b]
        victims = [
            vreg for vreg, color in result.assignment.items()
            if color == fold and vreg.rclass == b.rclass
        ]
        for vreg in victims:
            _set_color(allocation, result, vreg, keep)
        return (
            f"{result.function.name}: merged color {fold} into {keep} "
            f"({len(victims)} ranges, class {b.rclass})"
        )
    return None


@register_fault("out_of_file_color", expect="detected")
def inject_out_of_file_color(module, allocation, rng):
    """A color beyond the register file (an off-by-N in the color order).

    Prefers a register that occurs in the final code so the *static*
    layer sees it; an assignment-only register (e.g. an unused parameter)
    is still caught dynamically by the simulator's file-bounds check.
    """
    candidates = []
    for result in allocation.results.values():
        occurring = set()
        for _block, _index, instr in result.function.instructions():
            occurring.update(instr.defs)
            occurring.update(instr.uses)
        vregs = sorted(
            (v for v in result.assignment if v in occurring),
            key=lambda v: v.id,
        )
        candidates.append((bool(vregs), result,
                           vregs or sorted(result.assignment,
                                           key=lambda v: v.id)))
    for _occurs, result, vregs in sorted(
        candidates, key=lambda entry: not entry[0]
    ):
        if not vregs:
            continue
        victim = vregs[rng.randrange(len(vregs))]
        bad = result.target.regs(victim.rclass) + rng.randrange(1, 4)
        _set_color(allocation, result, victim, bad)
        return (
            f"{result.function.name}: colored {victim.pretty()} {bad}, "
            f"outside the {result.target.regs(victim.rclass)}-register file"
        )
    return None


@register_fault("corrupt_spill_slot", expect="detected")
def inject_corrupt_spill_slot(module, allocation, rng):
    """A reload reads another live range's frame slot (spill-placement
    bug invisible to the coloring check — only the differential run can
    see it)."""
    for function in module:
        reloads = [
            instr
            for _block, _index, instr in function.instructions()
            if instr.op in ("reload", "freload")
        ]
        slots = sorted({instr.imm for instr in reloads})
        if len(slots) < 2:
            continue
        victim = reloads[rng.randrange(len(reloads))]
        wrong = [slot for slot in slots if slot != victim.imm]
        original = victim.imm
        victim.imm = wrong[rng.randrange(len(wrong))]
        return (
            f"{function.name}: redirected a reload from slot {original} "
            f"to slot {victim.imm}"
        )
    return None


@register_fault("delete_reload", expect="detected")
def inject_delete_reload(module, allocation, rng):
    """A dropped reload: the use reads whatever the register last held."""
    for function in module:
        positions = [
            (block, index)
            for block, index, instr in function.instructions()
            if instr.op in ("reload", "freload")
        ]
        if not positions:
            continue
        block, index = positions[rng.randrange(len(positions))]
        deleted = block.instrs.pop(index)
        return f"{function.name}: deleted '{deleted.op} slot {deleted.imm}'"
    return None


# ----------------------------------------------------------------------
# Input-perturbing injector: spill-cost noise must degrade quality, not
# correctness.
# ----------------------------------------------------------------------


@register_fault("perturb_spill_cost", kind="costs", expect="degraded")
def inject_perturb_spill_cost(rng, low=0.25, high=4.0):
    """Seeded noise on every finite spill cost: the allocator may pick
    worse victims, but the result must still validate and run correctly.
    Returns a context manager active while allocating."""

    @contextlib.contextmanager
    def perturbed():
        from repro.regalloc import driver as driver_module

        original = driver_module.compute_spill_costs

        def noisy_compute(function, loop_info=None):
            costs = original(function, loop_info)
            return SpillCosts({
                vreg: (
                    cost if cost == INFINITE_COST
                    else cost * rng.uniform(low, high)
                )
                for vreg, cost in costs.items()
            })

        driver_module.compute_spill_costs = noisy_compute
        try:
            yield
        finally:
            driver_module.compute_spill_costs = original

    return perturbed()


# ----------------------------------------------------------------------
# Worker faults: strategies that break inside the parallel driver.  All
# are module-level (hence picklable) so they cross the process boundary
# the same way real strategies do.  On the persistent-pool transport
# (PR 6, :mod:`repro.regalloc.pool`) these probes exercise the batch
# path end to end: strategy *objects* are never response-cached, so a
# crash always happens live in a warm worker, is contained per function
# inside its batch, and must surface at the driver layer exactly as it
# did on the PR-2 per-call pool — a hang additionally forces a pool
# restart, which the lifecycle tests assert.
# ----------------------------------------------------------------------


class CrashingAllocator(BriggsAllocator):
    """Deterministic worker crash: every allocation attempt raises."""

    def __init__(self, order: str = "cost"):
        super().__init__(order)
        self.name = "crashing-briggs"

    def allocate_class(self, graph, costs, color_order=None, tracer=None):
        raise RuntimeError("injected fault: worker crash in allocate_class")


class FlakyAllocator(BriggsAllocator):
    """Crashes only outside the process that created it — the driver's
    bounded in-process retry heals it with no recorded failure."""

    def __init__(self, order: str = "cost"):
        super().__init__(order)
        self.name = "flaky-briggs"
        self.spawn_pid = os.getpid()

    def allocate_class(self, graph, costs, color_order=None, tracer=None):
        if os.getpid() != self.spawn_pid:
            raise RuntimeError("injected fault: crash outside spawn process")
        return super().allocate_class(graph, costs, color_order, tracer=tracer)


class HangingAllocator(BriggsAllocator):
    """Wedges past any reasonable per-function timeout."""

    def __init__(self, delay: float = 3600.0, order: str = "cost"):
        super().__init__(order)
        self.name = "hanging-briggs"
        self.delay = delay

    def allocate_class(self, graph, costs, color_order=None, tracer=None):
        time.sleep(self.delay)
        return super().allocate_class(graph, costs, color_order, tracer=tracer)


@register_fault("worker_crash", kind="worker", expect="degraded")
def inject_worker_crash(rng):
    """A worker process dies on every function: the hardened driver must
    degrade each one and record the failures."""
    return CrashingAllocator(), {"jobs": 2, "retries": 1}


@register_fault("worker_hang", kind="worker", expect="degraded")
def inject_worker_hang(rng):
    """A worker wedges: the per-function timeout must reclaim it."""
    return HangingAllocator(delay=60.0), {"jobs": 2, "timeout": 1.0,
                                          "retries": 0}


# ----------------------------------------------------------------------
# Service faults: request-level failure modes of the allocation daemon
# (PR 7, :mod:`repro.service`).  Injectors return a spec dict the
# server's (or the chaos client's) fault hook interprets; probing spins
# an in-process server and replays the fault against it live.
# ----------------------------------------------------------------------


@register_fault("slow_request", kind="service", expect="degraded")
def inject_slow_request(rng):
    """A request stalls past its deadline budget: the service must answer
    504 inside bounded time, never hold the queue slot indefinitely."""
    return {"delay": rng.uniform(0.8, 1.5)}


@register_fault("cache_corrupt", kind="service", expect="degraded")
def inject_cache_corrupt(rng):
    """Disk-cache entries are corrupted under a live server: the verified
    read path must quarantine them and recompute identical answers."""
    return {"offset": rng.randrange(0, 64)}


@register_fault("client_disconnect", kind="service", expect="degraded")
def inject_client_disconnect(rng):
    """The client hangs up mid-request: the server must absorb the broken
    pipe and keep serving everyone else."""
    return {"after": rng.uniform(0.0, 0.05)}


# ----------------------------------------------------------------------
# Process faults: the allocating process itself dies (PR 8,
# :mod:`repro.durability`).  The injector returns kill-torture knobs;
# probing delegates to the torture harness, which SIGKILLs a supervised
# child at seeded journal appends and compares the resumed result
# against an unkilled reference, byte for byte.
# ----------------------------------------------------------------------


@register_fault("process_kill", kind="process", expect="degraded")
def inject_process_kill(rng):
    """The allocating process is SIGKILLed mid-run (possibly mid-write):
    the supervisor must resume from the journal to a result byte-identical
    to an unkilled run, leaking no workers."""
    return {"kills": 2, "seed": rng.randrange(1 << 16), "step_max": 3,
            "torn_rate": 0.5}


# ----------------------------------------------------------------------
# The probe: inject one fault into a correct pipeline, report what fired.
# ----------------------------------------------------------------------


class FaultProbe:
    """Outcome of injecting one fault into a correct pipeline."""

    __slots__ = ("fault", "seed", "injected", "detected_by", "degraded",
                 "failures", "detail")

    def __init__(self, fault, seed, injected, detected_by=(), degraded=False,
                 failures=0, detail=""):
        self.fault = fault  # the Fault record
        self.seed = seed
        #: injector's description of the corruption; None = inapplicable.
        self.injected = injected
        #: layers that tripped: "invariants", "static", "verifier",
        #: "dynamic", "driver".
        self.detected_by = tuple(detected_by)
        #: True when the system absorbed the fault and still ran correctly,
        #: with the degradation on record.
        self.degraded = degraded
        self.failures = failures
        self.detail = detail

    @property
    def ok(self) -> bool:
        """The fault's contract held: detected when it must be detected,
        gracefully (and visibly) degraded when degradation is allowed."""
        if self.injected is None:
            return False  # the injector never applied: the probe proved nothing
        if self.fault.expect == "detected":
            return bool(self.detected_by)
        return self.degraded

    @property
    def silent(self) -> bool:
        return not self.ok

    def __repr__(self) -> str:
        caught = ",".join(self.detected_by) or (
            "degraded" if self.degraded else "SILENT"
        )
        return f"FaultProbe({self.fault.name} seed={self.seed}: {caught})"


def _dynamic_layer(module, target, assignment, baseline,
                   max_instructions) -> tuple:
    """Run the allocated module; returns (tripped, detail)."""
    try:
        outcome = run_module(
            module, target=target, assignment=assignment,
            max_instructions=max_instructions,
        )
    except SimulationError as error:
        return True, f"simulator fault: {error}"
    if outcome.outputs != baseline:
        return True, f"outputs diverged: {outcome.outputs} != {baseline}"
    return False, ""


def probe_fault(
    name: str,
    seed: int = 0,
    source: str | None = None,
    method: str = "briggs",
    target=None,
    max_instructions: int = 10_000_000,
    tracer=None,
) -> FaultProbe:
    """Inject fault ``name`` (seeded with ``seed``) into a correct
    compile/allocate/run pipeline over ``source`` and report which defense
    layers tripped.  Deterministic: same arguments, same probe.  With a
    ``tracer`` the probe (and the allocations under it) records spans
    tagged with the fault name and seed.
    """
    fault = FAULTS.get(name)
    if fault is None:
        known = ", ".join(sorted(FAULTS))
        raise AllocationError(f"unknown fault {name!r} (known: {known})")
    tracer = coerce_tracer(tracer)
    with tracer.span(f"fault:{name}", cat="fault", seed=seed,
                     kind=fault.kind, method=method):
        return _run_probe(fault, seed, source, method, target,
                          max_instructions, tracer)


def _run_probe(fault, seed, source, method, target, max_instructions,
               tracer) -> FaultProbe:
    rng = random.Random(seed)
    source = source if source is not None else DEFAULT_FAULT_SOURCE
    target = target or default_fault_target()
    baseline = run_module(
        compile_source(source), max_instructions=max_instructions
    ).outputs
    module = compile_source(source)

    if fault.kind == "costs":
        with fault.inject(rng):
            allocation = allocate_module(module, target, method,
                                         validate=True, tracer=tracer)
        tripped, detail = _dynamic_layer(
            module, target, allocation.assignment, baseline, max_instructions
        )
        return FaultProbe(
            fault, seed, "spill costs perturbed", degraded=not tripped,
            detail=detail or "allocation still validates and runs correctly",
        )

    if fault.kind == "worker":
        strategy, extra = fault.inject(rng)
        allocation = allocate_module(
            module, target, strategy, policy="degrade-to-naive",
            tracer=tracer, **extra
        )
        detected = ["driver"] if allocation.failures else []
        complete = set(allocation.results) == {f.name for f in module}
        tripped, detail = _dynamic_layer(
            module, target, allocation.assignment, baseline, max_instructions
        )
        degraded = bool(allocation.failures) and complete and not tripped
        return FaultProbe(
            fault, seed, f"worker fault via {strategy.name}",
            detected_by=detected, degraded=degraded,
            failures=len(allocation.failures),
            detail=detail or "; ".join(
                f"{f.function}: {f.error_type} in {f.phase} -> {f.action}"
                for f in allocation.failures
            ),
        )

    if fault.kind == "process":
        # Process death needs a supervised child: delegate to the
        # kill-torture harness, which runs the allocation in a child,
        # SIGKILLs it at the injector's seeded journal appends, and
        # diffs the resumed result against an unkilled reference.
        import tempfile

        from repro.durability.torture import run_torture

        spec = fault.inject(rng)
        with tempfile.TemporaryDirectory(prefix="repro-torture-") as tmp:
            report = run_torture(
                sources=[source], target=target, method=method,
                journal_path=f"{tmp}/torture.journal", **spec,
            )
        detected = ["supervisor"] if report.kills_delivered else []
        points = [point for point, _torn in report.schedule]
        return FaultProbe(
            fault, seed,
            f"SIGKILL at journal appends {points} "
            f"({report.torn_delivered} torn)",
            detected_by=detected, degraded=report.ok,
            failures=report.deaths, detail=repr(report),
        )

    if fault.kind == "service":
        # Service faults need a live daemon: delegate to the chaos
        # harness's single-fault probe (in-process server, one seeded
        # faulted request, contract checks per fault).
        from repro.service.chaos import probe_service_fault

        injected, detected, degraded, failures, detail = \
            probe_service_fault(fault, seed)
        return FaultProbe(
            fault, seed, injected, detected_by=detected,
            degraded=degraded, failures=failures, detail=detail,
        )

    # kind == "allocation": corrupt a finished, correct allocation.
    # paranoia="cheap" keeps the final-pass interference graphs on each
    # result, arming the post-hoc invariant layer below.
    allocation = allocate_module(module, target, method, validate=True,
                                 paranoia="cheap", tracer=tracer)
    injected = fault.inject(module, allocation, rng)
    if injected is None:
        return FaultProbe(fault, seed, None,
                          detail="injector found nothing to corrupt")

    detected = []
    detail = []
    try:
        for result in allocation.results.values():
            recheck_assignment(result)
    except InvariantError as error:
        detected.append("invariants")
        detail.append(f"invariants: {error.message}")
    try:
        for result in allocation.results.values():
            check_allocation(result)
    except AllocationError as error:
        detected.append("static")
        detail.append(f"static: {error.message}")
    try:
        for function in module:
            verify_function(function)
    except VerificationError as error:
        detected.append("verifier")
        detail.append(f"verifier: {error.message}")
    tripped, dynamic_detail = _dynamic_layer(
        module, target, allocation.assignment, baseline, max_instructions
    )
    if tripped:
        detected.append("dynamic")
        detail.append(f"dynamic: {dynamic_detail}")
    return FaultProbe(
        fault, seed, injected, detected_by=detected,
        detail="; ".join(detail),
    )
