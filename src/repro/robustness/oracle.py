"""Exact small-graph oracles for the coloring heuristics.

Both allocators are *heuristics*: they may spill on a graph that is in
fact k-colorable, and nothing inside the heuristic itself can tell a
legitimate heuristic miss from a genuine bug.  Bouchez, Darte & Rastello
(RR2007-42) locate the hard cases of spill minimization exactly where
heuristics and optima diverge, so this module supplies the ground truth
for graphs small enough to decide exactly:

* :func:`exact_color` — backtracking k-colorability with forward
  checking, honoring the precolored physical clique.  Returns a proper
  coloring or ``None``; with it, "claimed coloring invalid" and "spilled
  although the oracle colors it" are both decidable, not just plausible;
* :func:`oracle_verdict` — cross-examines one :class:`ClassAllocation`
  against the exact answer: an allocator claiming a complete coloring of
  a graph the oracle proves *un*colorable is a contradiction (one of the
  two is broken — either way a bug), and an allocator spilling on a graph
  the oracle colors is recorded as a **heuristic gap** (expected for both
  heuristics, never an error, but worth measuring);
* :func:`check_subset_guarantee` — the paper's §2.3 theorem as an
  executable assertion: on the *same* graph with the *same* costs and
  tie-breaking, Briggs's uncolored set must be a subset of Chaitin's
  spill set, and when Chaitin colors everything the two allocators must
  agree exactly.  :func:`check_function_subset_guarantee` and
  :func:`check_workload_subset_guarantee` lift the assertion to whole
  functions and registry workloads at chosen register-file sizes.

The fuzz loop (:mod:`repro.robustness.fuzz`) runs all three on every
generated graph.
"""

from __future__ import annotations

from repro.analysis.bitset import iter_bits, popcount
from repro.errors import AllocationError, InvariantError
from repro.ir.values import RClass
from repro.machine.target import Target
from repro.regalloc.briggs import BriggsAllocator
from repro.regalloc.chaitin import ChaitinAllocator
from repro.regalloc.interference import build_interference_graphs
from repro.regalloc.invariants import check_class_invariants
from repro.regalloc.spill_costs import compute_spill_costs

#: Default ceiling on virtual nodes for the exact search.  Backtracking
#: is exponential in the worst case; below this bound the forward-checked
#: search decides any graph in well under a second.
MAX_ORACLE_NODES = 24


def exact_color(graph, max_nodes: int = MAX_ORACLE_NODES):
    """Decide k-colorability of ``graph`` exactly.

    Returns ``{vreg: color}`` — a proper coloring of every virtual node
    with the precolored clique fixed — or ``None`` when no such coloring
    exists.  Uses most-constrained-first backtracking with forward
    checking.  Raises :class:`AllocationError` when the graph exceeds
    ``max_nodes`` virtual nodes (the caller should not trust exponential
    search on big graphs).
    """
    k = graph.k
    nodes = list(range(k, graph.num_nodes))
    if len(nodes) > max_nodes:
        raise AllocationError(
            f"exact oracle refused: {len(nodes)} virtual nodes exceeds the "
            f"{max_nodes}-node bound for backtracking search"
        )
    full = (1 << k) - 1
    allowed = {}
    for node in nodes:
        mask = full
        for neighbor in graph.neighbors(node):
            if neighbor < k:
                mask &= ~(1 << neighbor)
        allowed[node] = mask
    assignment: dict = {}

    def pick():
        """Unassigned node with the fewest remaining colors (ties break
        toward higher degree, then lower index — determinism matters for
        replayable fuzz runs)."""
        best_key = None
        best_node = None
        for node in nodes:
            if node in assignment:
                continue
            key = (popcount(allowed[node]), -graph.degree(node), node)
            if best_key is None or key < best_key:
                best_key, best_node = key, node
        return best_node

    def search() -> bool:
        node = pick()
        if node is None:
            return True
        for color in iter_bits(allowed[node]):
            assignment[node] = color
            pruned = []
            dead = False
            for neighbor in graph.neighbors(node):
                if (
                    neighbor >= k
                    and neighbor not in assignment
                    and (allowed[neighbor] >> color) & 1
                ):
                    allowed[neighbor] &= ~(1 << color)
                    pruned.append(neighbor)
                    if allowed[neighbor] == 0:
                        dead = True
            if not dead and search():
                return True
            for neighbor in pruned:
                allowed[neighbor] |= 1 << color
            del assignment[node]
        return False

    if not search():
        return None
    return {graph.vreg_for(node): color for node, color in assignment.items()}


class OracleVerdict:
    """One allocation outcome judged against the exact answer."""

    __slots__ = ("colorable", "spilled", "heuristic_gap")

    def __init__(self, colorable, spilled, heuristic_gap):
        #: the exact answer: is the graph k-colorable at all?
        self.colorable = colorable
        #: how many ranges the heuristic spilled/left uncolored.
        self.spilled = spilled
        #: True when the heuristic spilled although the oracle colors the
        #: graph — a quality miss, not a correctness bug.
        self.heuristic_gap = heuristic_gap

    def __repr__(self) -> str:
        judged = "gap" if self.heuristic_gap else "exact"
        return (
            f"OracleVerdict(colorable={self.colorable}, "
            f"spilled={self.spilled}, {judged})"
        )


def oracle_verdict(graph, outcome, max_nodes: int = MAX_ORACLE_NODES):
    """Cross-examine ``outcome`` (a :class:`ClassAllocation`) against the
    exact oracle.

    Raises :class:`InvariantError` when the claimed coloring is invalid
    (delegated to the paranoia layer's proper-coloring check) or when the
    allocator claims a complete coloring of a graph the oracle proves
    uncolorable — each a hard contradiction.  Returns an
    :class:`OracleVerdict` otherwise.
    """
    check_class_invariants(graph, outcome, level="cheap")
    coloring = exact_color(graph, max_nodes=max_nodes)
    colorable = coloring is not None
    spilled = len(outcome.spilled_vregs)
    if not colorable and spilled == 0 and graph.num_vreg_nodes > 0:
        raise InvariantError(
            f"{graph!r}: allocator claims a complete {graph.k}-coloring "
            f"but the exact oracle proves the graph uncolorable"
        )
    return OracleVerdict(
        colorable=colorable,
        spilled=spilled,
        heuristic_gap=colorable and spilled > 0,
    )


class SubsetGuaranteeReport:
    """Evidence from one §2.3 subset-guarantee check (construction
    implies the guarantee held)."""

    __slots__ = ("briggs", "chaitin", "briggs_spilled", "chaitin_spilled")

    def __init__(self, briggs, chaitin):
        #: the two raw :class:`ClassAllocation` outcomes, for reuse.
        self.briggs = briggs
        self.chaitin = chaitin
        self.briggs_spilled = set(briggs.spilled_vregs)
        self.chaitin_spilled = set(chaitin.spilled_vregs)

    def __repr__(self) -> str:
        return (
            f"SubsetGuaranteeReport(briggs spills "
            f"{len(self.briggs_spilled)} ⊆ chaitin "
            f"{len(self.chaitin_spilled)})"
        )


def declared_guarantees(strategy) -> frozenset:
    """The comparison guarantees ``strategy`` declares about itself.

    Strategies opt into §2.3 assertions by carrying a ``guarantees``
    tuple (see :class:`~repro.regalloc.briggs.BriggsAllocator`); a
    strategy without the attribute declares nothing and is never held to
    a theorem that was proved for a different algorithm.
    """
    return frozenset(getattr(strategy, "guarantees", ()))


def check_subset_guarantee(graph, costs, color_order=None, briggs=None,
                           chaitin=None):
    """Assert the paper's §2.3 theorem on one graph — **scoped to the
    guarantees the candidate strategy declares**.

    Runs ``chaitin`` (default :class:`ChaitinAllocator`) and ``briggs``
    (default cost-ordered :class:`BriggsAllocator`) over ``graph`` with
    the same ``costs`` (hence the same cost/degree victim rule and the
    same lowest-index tie-breaking) and asserts whichever of these the
    candidate's ``guarantees`` tuple declares:

    * ``"spills-subset-of-chaitin"`` — the candidate's uncolored set
      ⊆ Chaitin's spill set;
    * ``"matches-chaitin-when-colorable"`` — when Chaitin spills
      nothing, the candidate spills nothing *and* produces the identical
      coloring.

    Returns ``None`` without running anything when the candidate
    declares neither (e.g. ``BriggsAllocator(order="degree")``, the §2.2
    smallest-last strawman, whose spill set provably has no containment
    relation to Chaitin's) or when the reference side does not declare
    ``"chaitin-reference"``.  Raises :class:`InvariantError` with the
    offending live ranges on any violation; returns a
    :class:`SubsetGuaranteeReport` otherwise.
    """
    briggs_strategy = briggs if briggs is not None else BriggsAllocator()
    chaitin_strategy = chaitin if chaitin is not None else ChaitinAllocator()
    declared = declared_guarantees(briggs_strategy)
    applicable = declared & {"spills-subset-of-chaitin",
                             "matches-chaitin-when-colorable"}
    if not applicable:
        return None
    if "chaitin-reference" not in declared_guarantees(chaitin_strategy):
        return None
    chaitin_outcome = chaitin_strategy.allocate_class(
        graph, costs, color_order)
    briggs_outcome = briggs_strategy.allocate_class(
        graph, costs, color_order)
    briggs_spilled = set(briggs_outcome.spilled_vregs)
    chaitin_spilled = set(chaitin_outcome.spilled_vregs)
    if "spills-subset-of-chaitin" in applicable:
        extra = briggs_spilled - chaitin_spilled
        if extra:
            names = sorted(vreg.pretty() for vreg in extra)
            raise InvariantError(
                f"§2.3 subset guarantee violated on {graph!r}: "
                f"{briggs_strategy.name} spilled {names} which Chaitin "
                f"kept in registers"
            )
    if "matches-chaitin-when-colorable" in applicable and \
            not chaitin_spilled:
        if briggs_spilled:
            names = sorted(vreg.pretty() for vreg in briggs_spilled)
            raise InvariantError(
                f"{graph!r}: {briggs_strategy.name} spilled {names} on a "
                f"graph Chaitin colors completely"
            )
        if briggs_outcome.colors != chaitin_outcome.colors:
            raise InvariantError(
                f"{graph!r}: Chaitin colors the graph completely but "
                f"{briggs_strategy.name} produced a different coloring — "
                f"the two must agree exactly when no spilling happens "
                f"(§2.2)"
            )
    return SubsetGuaranteeReport(briggs_outcome, chaitin_outcome)


def _oracle_target(k: int) -> Target:
    """A synthetic two-file target with ``k`` registers per class; like
    the RT/PC, the upper half of each file is caller-saved."""
    caller = range((k + 1) // 2, k)
    return Target(f"oracle-k{k}", k, k, caller, caller)


def check_function_subset_guarantee(function, k: int):
    """Assert the subset guarantee on ``function``'s interference graphs
    (both register classes) at ``k`` registers per file.  Returns the
    per-class reports."""
    target = _oracle_target(k)
    graphs = build_interference_graphs(function, target)
    costs = compute_spill_costs(function)
    reports = {}
    for rclass in (RClass.INT, RClass.FLOAT):
        graph = graphs[rclass]
        if graph.num_vreg_nodes == 0:
            continue
        try:
            report = check_subset_guarantee(
                graph, costs, target.color_order(rclass)
            )
        except InvariantError as error:
            raise error.with_context(
                function=function.name, rclass=str(rclass), k=k
            )
        if report is not None:
            reports[rclass] = report
    return reports


def check_workload_subset_guarantee(workload, ks=(4, 8, 16)) -> int:
    """Assert the subset guarantee over every function of a registry
    workload at each register count in ``ks``.  Returns the number of
    (function, class, k) graphs checked."""
    checked = 0
    for k in ks:
        module = workload.compile()
        for function in module:
            checked += len(check_function_subset_guarantee(function, k))
    return checked
