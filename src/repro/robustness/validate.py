"""Layer 1 of the defense stack: translation validation.

``check_allocation`` (layer 0, in the driver) proves the *coloring* is
consistent with the interference graph it re-derives — but it cannot see
bugs that live outside the graph: a reload from the wrong frame slot, a
deleted reload, a value parked in a caller-saved register whose clobber
never manifests as an edge.  This module closes that gap the way
translation validators do — by *running* the code:

* the **reference** run interprets a module on virtual registers (the
  pre-allocation semantics);
* the **candidate** run executes the allocated module on the target's
  physical register files under the allocation's assignment, with the
  simulator poisoning caller-saved registers at calls;
* the two print streams must match exactly.

Pass the pristine pre-allocation module as ``baseline`` to also catch
spill-*rewrite* bugs (wrong slot, lost store): the allocated module's own
virtual-mode semantics already include the spill code, so validating it
against itself would miss corruption that changed the IR's meaning.
"""

from __future__ import annotations

from repro.errors import SimulationError, TranslationValidationError
from repro.machine.simulator import run_module
from repro.machine.target import rt_pc
from repro.observability.trace import coerce_tracer
from repro.regalloc.driver import ModuleAllocation, allocate_module, check_allocation

#: Default workload-validation target: the experiment harness's trimmed
#: RT/PC (12 int / 6 float, see ``experiments.runner.EXPERIMENT_TARGET``'s
#: calibration note) so the medium and large routines actually spill and
#: the spill-code path is exercised, not just the coloring.
def default_validation_target():
    return rt_pc().with_int_regs(12).with_float_regs(6)


class ValidationReport:
    """Evidence from one successful differential validation.

    Construction implies success — a divergence raises
    :class:`TranslationValidationError` instead.
    """

    __slots__ = (
        "name",
        "method",
        "entry",
        "outputs",
        "baseline_outputs",
        "cycles",
        "instructions",
        "functions_checked",
    )

    def __init__(self, name, method, entry, outputs, baseline_outputs,
                 cycles, instructions, functions_checked):
        self.name = name
        self.method = method
        self.entry = entry
        self.outputs = outputs
        self.baseline_outputs = baseline_outputs
        self.cycles = cycles
        self.instructions = instructions
        self.functions_checked = functions_checked

    def __repr__(self) -> str:
        return (
            f"ValidationReport({self.name}/{self.method}: "
            f"{self.functions_checked} functions, "
            f"{len(self.outputs)} outputs matched)"
        )


def _first_divergence(reference: list, candidate: list) -> dict:
    for index, (want, got) in enumerate(zip(reference, candidate)):
        if want != got:
            return {"output_index": index, "expected": want, "actual": got}
    return {
        "output_index": min(len(reference), len(candidate)),
        "expected_length": len(reference),
        "actual_length": len(candidate),
    }


def verify_allocation(
    module,
    allocation: ModuleAllocation,
    entry: str | None = None,
    inputs=None,
    baseline=None,
    max_instructions: int = 200_000_000,
    static: bool = True,
    tracer=None,
) -> ValidationReport:
    """Differentially validate ``allocation`` over ``module``.

    Statically re-checks every per-function coloring first (``static=
    False`` skips that, for callers who already ran ``validate=True``),
    then compares the reference run of ``baseline`` (default: ``module``
    itself, on virtual registers) against the physical-register run of
    ``module`` under ``allocation.assignment``.  ``inputs`` are passed as
    the entry routine's arguments in both runs.

    Raises :class:`TranslationValidationError` — with the divergence's
    structured context — on any mismatch; returns a
    :class:`ValidationReport` when every check passes.
    """
    tracer = coerce_tracer(tracer)
    if static:
        with tracer.span("validate:static", cat="validate",
                         functions=len(allocation.results)):
            for result in allocation.results.values():
                check_allocation(result)

    reference_module = module if baseline is None else baseline
    args = list(inputs) if inputs else None
    try:
        with tracer.span("validate:reference", cat="validate",
                         module=module.name):
            reference = run_module(
                reference_module, entry=entry,
                max_instructions=max_instructions, args=args,
            )
    except SimulationError as error:
        raise TranslationValidationError(
            f"reference (virtual-register) run failed: {error}",
            context={"entry": entry, "run": "reference"},
        ) from error

    try:
        with tracer.span("validate:candidate", cat="validate",
                         module=module.name, method=allocation.method):
            candidate = run_module(
                module, entry=entry, target=allocation.target,
                assignment=allocation.assignment,
                max_instructions=max_instructions, args=args,
            )
    except SimulationError as error:
        raise TranslationValidationError(
            f"allocated code faulted where the reference ran: {error}",
            context={
                "entry": entry,
                "run": "candidate",
                "method": allocation.method,
            },
        ) from error

    if candidate.outputs != reference.outputs:
        raise TranslationValidationError(
            f"allocated outputs diverge from the pre-allocation "
            f"semantics ({allocation.method})",
            context=dict(
                _first_divergence(reference.outputs, candidate.outputs),
                entry=entry,
                method=allocation.method,
            ),
        )

    return ValidationReport(
        name=module.name,
        method=allocation.method,
        entry=entry,
        outputs=candidate.outputs,
        baseline_outputs=reference.outputs,
        cycles=candidate.cycles,
        instructions=candidate.instructions,
        functions_checked=len(allocation.results),
    )


def validate_workload(
    workload,
    method: str = "briggs",
    target=None,
    tracer=None,
    **alloc_kwargs,
) -> ValidationReport:
    """End-to-end translation validation of one registry workload.

    Compiles the workload twice — a pristine reference and a candidate
    that gets allocated — so spill rewrites in the candidate are validated
    against genuinely pre-allocation code; also runs the workload's own
    output oracle against the reference stream.  ``tracer`` covers both
    the allocation and the differential runs.
    """
    target = target or default_validation_target()
    baseline = workload.compile()
    module = workload.compile()
    allocation = allocate_module(module, target, method, tracer=tracer,
                                 **alloc_kwargs)
    report = verify_allocation(
        module, allocation, entry=workload.entry, baseline=baseline,
        tracer=tracer,
    )
    workload.verify_outputs(report.baseline_outputs)
    return report


def validate_registry(
    methods=("briggs", "chaitin"),
    target=None,
    names=None,
) -> list:
    """Validate every registry workload under every method; returns the
    reports (raising on the first divergence)."""
    from repro.workloads import all_workloads

    reports = []
    for name, workload in sorted(all_workloads().items()):
        if names is not None and name not in names:
            continue
        for method in methods:
            reports.append(validate_workload(workload, method, target))
    return reports
