"""Deterministic crash bundles: everything needed to replay a failure.

When the hardened driver absorbs (or is about to raise) an allocation
failure, it dumps the evidence under ``<out_dir>/crash-<function>/``:

* ``function.ir`` — the function's textual IR at the moment of failure
  (spill rewrites from earlier passes included), re-parseable with
  :func:`repro.ir.parse_module`;
* ``interference-int.dot`` / ``interference-float.dot`` — the class
  interference graphs rebuilt on that IR, rendered for Graphviz;
* ``meta.json`` — function, method, target shape, seed, and the error
  with its structured context, with sorted keys and no timestamps so the
  same failure always produces byte-identical metadata.

The bundle path is deterministic (keyed by function name, not by time or
pid) so repeated failures overwrite rather than accumulate, and a test
can assert the exact layout.

:func:`write_fuzz_bundle` does the same for fuzz failures
(:mod:`repro.robustness.fuzz`): the *minimized* witness — ``graph.json``
plus a rendered ``interference.dot`` for graph cases, ``program.f`` for
IR cases — under ``fuzz-<kind>-<case_seed>/``, with the same
sorted-keys / no-timestamps discipline so a replayed campaign rewrites
byte-identical bundles.
"""

from __future__ import annotations

import json
import pathlib

from repro.analysis.cfg import CFG
from repro.analysis.liveness import Liveness
from repro.ir.printer import print_function
from repro.ir.values import RClass
from repro.regalloc.export import to_dot
from repro.regalloc.interference import build_interference_graphs

_CLASS_NAMES = {RClass.INT: "int", RClass.FLOAT: "float"}


def write_crash_bundle(
    function,
    target,
    error,
    out_dir="results",
    method: str | None = None,
    seed: int | None = None,
) -> pathlib.Path:
    """Write the crash bundle for ``function``; returns its directory.

    Graph reconstruction is itself best-effort — if the IR is too broken
    to analyze, the bundle still carries the IR text plus the analysis
    error in ``interference-error.txt``.
    """
    directory = pathlib.Path(out_dir) / f"crash-{function.name}"
    directory.mkdir(parents=True, exist_ok=True)
    (directory / "function.ir").write_text(print_function(function))

    graphs_meta: dict = {}
    try:
        liveness = Liveness(function, CFG(function))
        graphs = build_interference_graphs(function, target, liveness)
        for rclass, graph in graphs.items():
            class_name = _CLASS_NAMES[rclass]
            (directory / f"interference-{class_name}.dot").write_text(
                to_dot(graph, name=f"crash_{function.name}_{class_name}")
            )
            graphs_meta[class_name] = {
                "live_ranges": graph.num_vreg_nodes,
                "edges": graph.edge_count(),
            }
    except Exception as analysis_error:
        (directory / "interference-error.txt").write_text(
            f"{type(analysis_error).__name__}: {analysis_error}\n"
        )

    meta = {
        "format": 1,
        "function": function.name,
        "method": method,
        "seed": seed,
        "target": {
            "name": target.name,
            "int_regs": target.int_regs,
            "float_regs": target.float_regs,
        },
        "error": {
            "type": type(error).__name__,
            "message": str(error),
            "context": getattr(error, "context", {}) or {},
        },
        "graphs": graphs_meta,
    }
    (directory / "meta.json").write_text(
        json.dumps(meta, indent=2, sort_keys=True, default=str) + "\n"
    )
    return directory


def write_fuzz_bundle(
    failure,
    master_seed: int | None = None,
    out_dir="results/fuzz",
) -> pathlib.Path:
    """Write the bundle for one :class:`repro.robustness.fuzz.FuzzFailure`
    (its ``spec`` is already minimized); returns its directory.

    Graph cases get ``graph.json`` (the exact shrunken
    :class:`~repro.robustness.fuzz.GraphSpec`, enough to rebuild the
    failing graph with ``build_graph``) and ``interference.dot``; IR
    cases get ``program.f`` (re-runnable through ``repro verify``).
    """
    directory = (
        pathlib.Path(out_dir) / f"fuzz-{failure.kind}-{failure.case_seed}"
    )
    directory.mkdir(parents=True, exist_ok=True)

    spec = failure.spec
    meta = {
        "format": 1,
        "kind": failure.kind,
        "master_seed": master_seed,
        "case_seed": failure.case_seed,
        "iteration": failure.iteration,
        "stage": failure.stage,
        "error": {
            "type": failure.error_type,
            "message": failure.message,
        },
        "original_size": failure.original_size,
        "shrunk_size": failure.shrunk_size,
    }

    if failure.kind == "graph":
        meta["graph"] = spec.as_dict()
        (directory / "graph.json").write_text(
            json.dumps(spec.as_dict(), indent=2, sort_keys=True) + "\n"
        )
        try:
            from repro.robustness.fuzz import build_graph

            graph, _ = build_graph(spec)
            (directory / "interference.dot").write_text(
                to_dot(graph, name=f"fuzz_{failure.case_seed}")
            )
        except Exception as render_error:
            (directory / "interference-error.txt").write_text(
                f"{type(render_error).__name__}: {render_error}\n"
            )
    else:
        meta["registers"] = {
            "int": spec.k_int,
            "float": spec.k_float,
        }
        (directory / "program.f").write_text(spec.source)

    (directory / "meta.json").write_text(
        json.dumps(meta, indent=2, sort_keys=True, default=str) + "\n"
    )
    return directory
