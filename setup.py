"""Setup shim so that ``pip install -e .`` works on environments whose
setuptools predates PEP 660 editable wheels (no ``wheel`` package needed)."""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Reproduction of Briggs et al., 'Coloring Heuristics for Register "
        "Allocation' (PLDI 1989)"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.9",
)
